//! Text rendering of experiment results (ASCII bars and the paper's tables).

use crate::experiments::{
    DegradationDemo, Fig12, Fig9Row, FusionAblation, FusionParityAblation, MemoryRow,
    PlanoptAblation, ProfileTable, ScenariosAblation, ServeAblation, StreamsRow,
};

/// Render Figure 9 as labelled ASCII bars.
pub fn render_fig9(rows: &[Fig9Row]) -> String {
    let max =
        rows.iter().flat_map(|r| [r.horizontal_s, r.vertical_s]).fold(0.0f64, f64::max).max(1e-12);
    let bar = |v: f64| {
        let n = ((v / max) * 40.0).round() as usize;
        "#".repeat(n.max(1))
    };
    let mut out = String::from(
        "Figure 9: Execution time of horizontal and vertical filters\n\
         (simulated; whole run)\n\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<22} H {:>8.3}s |{}\n{:<22} V {:>8.3}s |{}\n",
            r.config,
            r.horizontal_s,
            bar(r.horizontal_s),
            "",
            r.vertical_s,
            bar(r.vertical_s)
        ));
    }
    out
}

/// Render a profile table in the paper's Table I/II format.
pub fn render_table(title: &str, t: &ProfileTable) -> String {
    let mut out = format!("{title}\n");
    out.push_str(&format!(
        "{:<26} {:>8} {:>16} {:>13}\n",
        "Operation", "#calls", "GPU time(usec)", "GPU time(%)"
    ));
    for r in &t.rows {
        out.push_str(&format!(
            "{:<26} {:>8} {:>16.0} {:>13.2}\n",
            r.label, r.calls, r.time_us, r.percent
        ));
    }
    let total = if t.total_s >= 0.01 {
        format!("{:.2}s", t.total_s)
    } else {
        format!("{:.3}ms", t.total_s * 1e3)
    };
    out.push_str(&format!("{:<26} {:>8} {:>16} {:>13.2}\n", "Total", "-", total, 100.0));
    out
}

/// Render the stream-count ablation (async frame pipelining).
pub fn render_streams(rows: &[StreamsRow]) -> String {
    let mut out = String::from(
        "Ablation: async streams / double-buffered frame pipelining\n\
         (whole run; streams=1 is the paper's serialized runtime)\n\n",
    );
    out.push_str(&format!(
        "{:>8} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12}\n",
        "streams", "SaC", "speedup", "overlap", "Gaspard2", "speedup", "overlap"
    ));
    let base = rows.first();
    for r in rows {
        let (sac0, gasp0) = base.map(|b| (b.sac_s, b.gaspard_s)).unwrap_or((r.sac_s, r.gaspard_s));
        out.push_str(&format!(
            "{:>8} {:>11.3}s {:>11.2}x {:>11.1}% {:>11.3}s {:>11.2}x {:>11.1}%\n",
            r.streams,
            r.sac_s,
            sac0 / r.sac_s,
            r.sac_overlap_pct,
            r.gaspard_s,
            gasp0 / r.gaspard_s,
            r.gaspard_overlap_pct,
        ));
    }
    out
}

/// Render the memory-allocator ablation (naive vs pooled).
pub fn render_memory(rows: &[MemoryRow]) -> String {
    let mut out = String::from(
        "Ablation: device memory allocation, naive vs pooled\n\
         (whole run; serial per-frame executors under the allocation-costed\n\
         calibration — cudaMalloc device-synchronizes, as on Fermi)\n\n",
    );
    out.push_str(&format!(
        "{:<8} {:>10} {:>10} {:>10} {:>12} {:>10} {:>10}\n",
        "alloc", "SaC", "mallocs", "hit rate", "Gaspard2", "mallocs", "hit rate"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<8} {:>9.3}s {:>10} {:>9.1}% {:>11.3}s {:>10} {:>9.1}%\n",
            r.config,
            r.sac_s,
            r.sac_driver_mallocs,
            r.sac_hit_rate,
            r.gaspard_s,
            r.gaspard_driver_mallocs,
            r.gaspard_hit_rate,
        ));
    }
    if let (Some(naive), Some(pooled)) = (rows.first(), rows.last()) {
        out.push_str(&format!(
            "\npooling saves {:.3}s (SaC) / {:.3}s (Gaspard2) over the run\n",
            naive.sac_s - pooled.sac_s,
            naive.gaspard_s - pooled.gaspard_s,
        ));
    }
    out
}

/// Render the cross-route kernel-fusion ablation.
pub fn render_fusion(a: &FusionAblation) -> String {
    let mut out = String::from(
        "Ablation: kernel fusion across routes\n\
         (whole run; SaC fuses via WITH-loop folding, Gaspard2 via the\n\
         tiler-composition pass; each also run under 2 streams + pooled allocator)\n\n",
    );
    out.push_str(&format!(
        "{:<18} {:>7} {:>5} {:>10} {:>16} {:>14}\n",
        "config", "streams", "pool", "total", "launches/frame", "peak bytes"
    ));
    for r in &a.rows {
        out.push_str(&format!(
            "{:<18} {:>7} {:>5} {:>9.3}s {:>16} {:>14}\n",
            r.config,
            r.streams,
            if r.pool { "on" } else { "off" },
            r.total_s,
            r.launches_per_frame,
            r.peak_bytes,
        ));
    }
    let pick = |config: &str, streams: usize| {
        a.rows.iter().find(|r| r.config == config && r.streams == streams)
    };
    if let (Some(unf), Some(fus)) = (pick("Gaspard2 unfused", 1), pick("Gaspard2 fused", 1)) {
        out.push_str(&format!(
            "\nfusion saves {:.3}s, {} launches/frame and {} peak bytes (Gaspard2, serialized)\n",
            unf.total_s - fus.total_s,
            unf.launches_per_frame - fus.launches_per_frame,
            unf.peak_bytes.saturating_sub(fus.peak_bytes),
        ));
    }
    out.push_str(&format!(
        "fused outputs {} the unfused route\n",
        if a.fused_outputs_match { "bit-identical to" } else { "DIFFER from" },
    ));
    out
}

/// Render the fusion-parity ablation (plan-level pass vs route-local
/// fusion stages).
pub fn render_fusion_parity(a: &FusionParityAblation) -> String {
    let mut out = String::from(
        "Ablation: plan-level kernel fusion vs route-local fusion (parity)\n\
         (imagepipe stencil chain; SaC's native fusion is WITH-loop folding,\n\
         Gaspard2's faithful baseline is the fuse_model-equivalent\n\
         faithful-codegen fusion; the plan-level pass must recover both)\n\n",
    );
    out.push_str(&format!(
        "{:<26} {:>8} {:>11} {:>14} {:>12} {:>9}\n",
        "config", "route", "plan-fusion", "launches/frame", "kernel calls", "total"
    ));
    for r in &a.rows {
        out.push_str(&format!(
            "{:<26} {:>8} {:>11} {:>14} {:>12} {:>8.3}s\n",
            r.config,
            r.route,
            if r.plan_fusion { "on" } else { "off" },
            r.launches_per_frame,
            r.kernel_calls,
            r.total_s,
        ));
    }
    out.push_str("\nDownscaler size sweep (static plan metrics, launches/frame):\n");
    out.push_str(&format!(
        "{:<18} {:>12} {:>8} {:>9} {:>7}\n",
        "scenario", "pixels", "route", "unfused", "fused"
    ));
    for r in &a.sweep {
        out.push_str(&format!(
            "{:<18} {:>5}x{:<6} {:>8} {:>9} {:>7}\n",
            r.scenario, r.rows_px, r.cols_px, r.route, r.launches_unfused, r.launches_fused,
        ));
    }
    out.push_str(&format!(
        "\nWLF recovery: plan fusion {} WLF-on launch counts and makespan\n",
        if a.wlf_recovered { "matches or beats" } else { "MISSES" },
    ));
    out.push_str(&format!(
        "stencil chain: {} kernel/frame via the plan-level pass\n",
        if a.stencil_single_kernel { "1" } else { ">1" },
    ));
    out.push_str(&format!(
        "outputs {} the CPU reference\n",
        if a.outputs_match { "bit-identical to" } else { "DIFFER from" },
    ));
    out
}

/// Render the plan-optimisation (transfer-elimination) ablation.
pub fn render_planopt(a: &PlanoptAblation) -> String {
    let mut out = String::from(
        "Ablation: plan-level transfer elimination (simgpu::planopt)\n\
         (whole run; naive placement lowers the unfused Gaspard2 route with\n\
         per-kernel host round trips, fused starts from the transfer-minimal\n\
         fused route; each pass setting also run under 2 streams + pool)\n\n",
    );
    out.push_str(&format!(
        "{:<26} {:<15} {:>7} {:>5} {:>9} {:>7} {:>7} {:>9} {:>9}\n",
        "config", "passes", "streams", "pool", "total", "h2d/f", "d2h/f", "H2D MB", "D2H MB"
    ));
    for r in &a.rows {
        out.push_str(&format!(
            "{:<26} {:<15} {:>7} {:>5} {:>8.3}s {:>7.1} {:>7.1} {:>9.1} {:>9.1}\n",
            r.config,
            r.passes,
            r.streams,
            if r.pool { "on" } else { "off" },
            r.total_s,
            r.h2d_per_frame,
            r.d2h_per_frame,
            r.h2d_mb,
            r.d2h_mb,
        ));
    }
    let pick = |config: &str, passes: &str, streams: usize| {
        a.rows.iter().find(|r| r.config == config && r.passes == passes && r.streams == streams)
    };
    if let (Some(off), Some(all)) =
        (pick("Gaspard2 naive placement", "off", 2), pick("Gaspard2 naive placement", "all", 2))
    {
        out.push_str(&format!(
            "\nnaive placement: planopt removes {:.1} MB H2D and {:.1} MB D2H, \
             {:.3}s -> {:.3}s (2 streams + pool)\n",
            off.h2d_mb - all.h2d_mb,
            off.d2h_mb - all.d2h_mb,
            off.total_s,
            all.total_s,
        ));
    }
    if let (Some(off), Some(all)) =
        (pick("Gaspard2 fused", "off", 2), pick("Gaspard2 fused", "all", 2))
    {
        out.push_str(&format!(
            "fused route: coalescing alone saves {:.3}s at equal bytes \
             ({:.3}s -> {:.3}s, 2 streams + pool)\n",
            off.total_s - all.total_s,
            off.total_s,
            all.total_s,
        ));
    }
    out.push_str(&format!(
        "optimized outputs {} every passes-off run\n",
        if a.outputs_match { "bit-identical to" } else { "DIFFER from" },
    ));
    out
}

/// Render the OOM graceful-degradation demonstration.
pub fn render_degradation(d: &DegradationDemo) -> String {
    let mut out = format!(
        "Graceful OOM degradation (device capped at {} B, {} streams requested)\n\n\
         naive:    error: {}\n\
         degraded: completed in {:.3}s, outputs {} the 1-stream baseline\n",
        d.capacity_bytes,
        d.streams,
        d.naive_error,
        d.degraded_s,
        if d.outputs_match_baseline { "bit-identical to" } else { "DIFFER from" },
    );
    for n in &d.notes {
        out.push_str(&format!("          {n}\n"));
    }
    out
}

/// Render Figure 12's grouped comparison.
pub fn render_fig12(f: &Fig12) -> String {
    let groups = [
        ("Horizontal Filter", f.horizontal),
        ("Vertical Filter", f.vertical),
        ("Host2Device", f.h2d),
        ("Device2Host", f.d2h),
    ];
    let max = groups.iter().flat_map(|(_, (a, b))| [*a, *b]).fold(0.0f64, f64::max).max(1e-12);
    let bar = |v: f64| "#".repeat(((v / max) * 36.0).round() as usize);
    let mut out = String::from("Figure 12: Kernel execution and data transfer time\n\n");
    for (label, (sac, gaspard)) in groups {
        out.push_str(&format!(
            "{label:<18} SAC      {sac:>8.3}s |{}\n{:<18} Gaspard2 {gaspard:>8.3}s |{}\n",
            bar(sac),
            "",
            bar(gaspard)
        ));
    }
    out
}

/// Render the fleet-serving ablation: scaling/policy table, rate sweep,
/// overload demonstration.
pub fn render_serve(a: &ServeAblation) -> String {
    let mut out = format!(
        "Ablation: multi-device fleet serving (serve crate over simgpu::Fleet)\n\
         (open-loop arrival trace of {}-frame downscale jobs on the fused\n\
         Gaspard2 route, 2 queues + pool per device; one job measures\n\
         {:.3} ms on an idle device)\n\n",
        a.frames_per_job, a.job_ms,
    );
    out.push_str(&format!(
        "{:<9} {:<17} {:>5} {:>9} {:>5} {:>9} {:>9} {:>9} {:>10}\n",
        "devices",
        "policy",
        "jobs",
        "completed",
        "shed",
        "frames/s",
        "p50 ms",
        "p99 ms",
        "makespan"
    ));
    for r in &a.scaling {
        out.push_str(&format!(
            "{:<9} {:<17} {:>5} {:>9} {:>5} {:>9.1} {:>9.3} {:>9.3} {:>9.3}s\n",
            r.devices,
            r.policy,
            r.jobs,
            r.completed,
            r.shed,
            r.fps,
            r.p50_ms,
            r.p99_ms,
            r.makespan_s,
        ));
    }
    out.push_str(&format!(
        "\n1 -> 4 devices: {:.2}x frames/s; outputs {} across every width and policy\n",
        a.speedup_1_to_4,
        if a.outputs_match_across_widths { "bit-identical" } else { "DIFFER" },
    ));

    out.push_str(&format!(
        "\narrival-rate sweep ({} devices, least-loaded, queue depth 8, replay jobs):\n\
         {:<6} {:>9} {:>5} {:>9} {:>5} {:>9} {:>9} {:>9}\n",
        a.rates.first().map_or(0, |r| r.devices),
        "load",
        "jobs/s",
        "jobs",
        "completed",
        "shed",
        "frames/s",
        "p50 ms",
        "p99 ms"
    ));
    for r in &a.rates {
        out.push_str(&format!(
            "{:<6} {:>9.1} {:>5} {:>9} {:>5} {:>9.1} {:>9.3} {:>9.3}\n",
            format!("{:.1}x", r.load_factor),
            r.offered_jobs_per_s,
            r.jobs,
            r.completed,
            r.shed,
            r.fps,
            r.p50_ms,
            r.p99_ms,
        ));
    }

    let d = &a.shed;
    out.push_str(&format!(
        "\noverload: {} two-frame jobs burst at {} devices sized for one lane \
         ({} bytes), queue depth 1\n  {} completed (OOM ladder degraded 2 -> 1 \
         lanes, {} ladder notes), {} shed at the door ({} shed notes)\n  \
         completed outputs {}; shed jobs produced nothing\n",
        d.jobs,
        d.devices,
        d.capacity_bytes,
        d.completed,
        d.degradation_notes,
        d.shed,
        d.shed_notes,
        if d.outputs_ok { "bit-identical to the golden model" } else { "CORRUPTED" },
    ));
    out
}

/// Render the workload-registry ablation: per-entry execution table on
/// both routes, serving table, and the cross-route / temporal headlines.
pub fn render_scenarios(a: &ScenariosAblation) -> String {
    let mut out = String::from(
        "Ablation: workload registry (crates/scenarios)\n\
         (every entry expressed on both routes and bit-checked against its\n\
         CPU reference; serialized vs 2-stream pipelined + pool vs planopt\n\
         ALL; one functional frame per run, three for the temporal entry)\n\n",
    );
    out.push_str(&format!(
        "{:<18} {:<8} {:<10} {:>6} {:>11} {:>9} {:>4}\n",
        "scenario", "route", "config", "frames", "total", "launches", "ok"
    ));
    for r in &a.rows {
        out.push_str(&format!(
            "{:<18} {:<8} {:<10} {:>6} {:>10.3}s {:>9} {:>4}\n",
            r.scenario,
            r.route,
            r.config,
            r.frames,
            r.total_s,
            r.launches,
            if r.outputs_ok { "yes" } else { "NO" },
        ));
    }

    out.push_str(
        "\nserving each entry's default job mix (2-device fleet, round-robin,\n\
         one functional job + template replays):\n",
    );
    out.push_str(&format!(
        "{:<18} {:>5} {:>6} {:>9} {:>5} {:>9} {:>9} {:>9} {:>4}\n",
        "scenario", "jobs", "f/job", "completed", "shed", "frames/s", "p50 ms", "p99 ms", "ok"
    ));
    for r in &a.serve {
        out.push_str(&format!(
            "{:<18} {:>5} {:>6} {:>9} {:>5} {:>9.1} {:>9.3} {:>9.3} {:>4}\n",
            r.scenario,
            r.jobs,
            r.frames_per_job,
            r.completed,
            r.shed,
            r.fps,
            r.p50_ms,
            r.p99_ms,
            if r.outputs_ok { "yes" } else { "NO" },
        ));
    }

    out.push_str(&format!(
        "\ncross-route outputs {} on every entry and configuration\n\
         temporal carry {} pipelining to the serial clock (2 streams == serial)\n",
        if a.cross_route_match { "bit-identical" } else { "DIFFER" },
        if a.temporal_serialized { "collapses" } else { "FAILS to collapse" },
    ));
    out
}

/// Render the autotuner's best-config table.
pub fn render_tune(a: &crate::tune::TuneAblation) -> String {
    let mut out = format!(
        "Ablation: simulator-as-oracle autotuner (bench::tune)\n\
         (per registry entry: route x streams x pool x planopt preset x\n\
         chunking/placement, scored by simulated full-batch makespan under\n\
         the `{}` model; winners bit-checked against the CPU reference and\n\
         re-priced under the opt-in `warp-tile` model)\n\n",
        a.model
    );
    out.push_str(&format!(
        "{:<18} {:<10} {:>5} {:<34} {:>11} {:>11} {:>7} {:>11} {:>4}\n",
        "scenario",
        "search",
        "evals",
        "best config",
        "tuned",
        "default",
        "speedup",
        "warp-tile",
        "ok"
    ));
    for r in &a.rows {
        let c = &r.config;
        let cfg = format!(
            "{} s{} {} {}{}",
            c.route,
            c.streams,
            if c.pool { "pool" } else { "nopool" },
            c.optimize,
            match (c.route.as_str(), c.channel_chunks, c.placement.as_str()) {
                ("sac", n, _) if n > 1 => format!(" chunk{n}"),
                ("gaspard", _, p) if p != "resident" => format!(" {p}"),
                _ => String::new(),
            },
        );
        out.push_str(&format!(
            "{:<18} {:<10} {:>5} {:<34} {:>10.3}s {:>10.3}s {:>6.2}x {:>10.3}s {:>4}\n",
            r.scenario,
            r.search,
            r.evals,
            cfg,
            r.best_s,
            r.default_s,
            r.speedup,
            r.warp_tile_s,
            if r.outputs_ok { "yes" } else { "NO" },
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use simgpu::profiler::TableRow;

    #[test]
    fn fig9_renders_bars() {
        let rows = vec![
            Fig9Row { config: "A".into(), horizontal_s: 2.0, vertical_s: 1.0 },
            Fig9Row { config: "B".into(), horizontal_s: 0.5, vertical_s: 0.25 },
        ];
        let text = render_fig9(&rows);
        assert!(text.contains('A'));
        assert!(text.contains("2.000s"));
        // Longer bar for the bigger value.
        let lines: Vec<&str> = text.lines().collect();
        let a_h = lines.iter().find(|l| l.starts_with('A')).unwrap();
        let b_h = lines.iter().find(|l| l.starts_with('B')).unwrap();
        assert!(a_h.matches('#').count() > b_h.matches('#').count());
    }

    #[test]
    fn table_renders_paper_columns() {
        let t = ProfileTable {
            rows: vec![TableRow {
                label: "H. Filter (3 kernels)".into(),
                calls: 300,
                time_us: 844185.0,
                percent: 29.51,
            }],
            total_s: 2.86,
        };
        let text = render_table("Table I", &t);
        assert!(text.contains("H. Filter (3 kernels)"));
        assert!(text.contains("844185"));
        assert!(text.contains("2.86s"));
    }

    #[test]
    fn memory_and_degradation_render() {
        let rows = vec![
            MemoryRow {
                config: "naive".into(),
                sac_s: 4.2,
                gaspard_s: 3.1,
                sac_driver_mallocs: 1200,
                gaspard_driver_mallocs: 900,
                sac_hit_rate: 0.0,
                gaspard_hit_rate: 0.0,
            },
            MemoryRow {
                config: "pooled".into(),
                sac_s: 3.7,
                gaspard_s: 2.8,
                sac_driver_mallocs: 4,
                gaspard_driver_mallocs: 3,
                sac_hit_rate: 99.7,
                gaspard_hit_rate: 99.7,
            },
        ];
        let text = render_memory(&rows);
        assert!(text.contains("naive"), "{text}");
        assert!(text.contains("pooled"));
        assert!(text.contains("pooling saves 0.500s"), "{text}");

        let d = DegradationDemo {
            capacity_bytes: 4096,
            streams: 4,
            naive_error: "device out of memory: requested 1024 B, available 0 B".into(),
            degraded_s: 1.25,
            notes: vec!["degraded: out of device memory at 4 stream lanes".into()],
            outputs_match_baseline: true,
        };
        let text = render_degradation(&d);
        assert!(text.contains("bit-identical"), "{text}");
        assert!(text.contains("4 stream lanes"), "{text}");
    }

    #[test]
    fn fusion_renders_savings() {
        use crate::experiments::FusionRow;
        let row = |config: &str, fused: bool, total_s: f64, launches: u64, peak: usize| FusionRow {
            config: config.into(),
            fused,
            streams: 1,
            pool: false,
            total_s,
            launches_per_frame: launches,
            peak_bytes: peak,
        };
        let a = FusionAblation {
            rows: vec![
                row("Gaspard2 unfused", false, 2.8, 6, 1000),
                row("Gaspard2 fused", true, 2.1, 3, 600),
            ],
            fused_outputs_match: true,
        };
        let text = render_fusion(&a);
        assert!(text.contains("Gaspard2 fused"), "{text}");
        assert!(
            text.contains("fusion saves 0.700s, 3 launches/frame and 400 peak bytes"),
            "{text}"
        );
        assert!(text.contains("bit-identical"), "{text}");
    }

    #[test]
    fn fusion_parity_renders_verdicts() {
        use crate::experiments::{FusionParityAblation, FusionParityRow, FusionParitySweepRow};
        let row = |config: &str, route: &str, plan_fusion: bool, launches: usize, total_s: f64| {
            FusionParityRow {
                config: config.into(),
                route: route.into(),
                plan_fusion,
                launches_per_frame: launches,
                kernel_calls: (launches * 300) as u64,
                total_s,
                outputs_match: true,
            }
        };
        let a = FusionParityAblation {
            rows: vec![
                row("SaC WLF on", "sac", false, 1, 1.950),
                row("SaC WLF off + plan fusion", "sac", true, 1, 1.684),
            ],
            sweep: vec![FusionParitySweepRow {
                scenario: "downscale-8k".into(),
                rows_px: 4320,
                cols_px: 7680,
                route: "sac".into(),
                launches_unfused: 14,
                launches_fused: 14,
            }],
            wlf_recovered: true,
            stencil_single_kernel: true,
            outputs_match: true,
        };
        let text = render_fusion_parity(&a);
        assert!(text.contains("SaC WLF off + plan fusion"), "{text}");
        assert!(text.contains("downscale-8k"), "{text}");
        assert!(text.contains("4320x7680"), "{text}");
        assert!(text.contains("plan fusion matches or beats WLF-on launch counts"), "{text}");
        assert!(text.contains("stencil chain: 1 kernel/frame via the plan-level pass"), "{text}");
        assert!(text.contains("outputs bit-identical to the CPU reference"), "{text}");
    }

    #[test]
    fn planopt_renders_savings() {
        use crate::experiments::PlanoptRow;
        let row = |config: &str, passes: &str, streams: usize, total_s: f64, mb: f64| PlanoptRow {
            config: config.into(),
            passes: passes.into(),
            streams,
            pool: streams == 2,
            total_s,
            h2d_per_frame: mb,
            d2h_per_frame: mb,
            h2d_mb: mb,
            d2h_mb: mb,
        };
        let a = PlanoptAblation {
            rows: vec![
                row("Gaspard2 naive placement", "off", 2, 2.5, 6.0),
                row("Gaspard2 naive placement", "all", 2, 1.5, 1.0),
                row("Gaspard2 fused", "off", 2, 1.408, 1.0),
                row("Gaspard2 fused", "all", 2, 1.399, 1.0),
            ],
            outputs_match: true,
        };
        let text = render_planopt(&a);
        assert!(text.contains("Gaspard2 naive placement"), "{text}");
        assert!(
            text.contains("planopt removes 5.0 MB H2D and 5.0 MB D2H, 2.500s -> 1.500s"),
            "{text}"
        );
        assert!(
            text.contains("coalescing alone saves 0.009s at equal bytes (1.408s -> 1.399s"),
            "{text}"
        );
        assert!(text.contains("bit-identical"), "{text}");
    }

    #[test]
    fn fig12_renders_groups() {
        let f = Fig12 {
            horizontal: (1.0, 0.8),
            vertical: (0.7, 0.4),
            h2d: (1.4, 1.4),
            d2h: (0.2, 0.2),
        };
        let text = render_fig12(&f);
        assert!(text.contains("Horizontal Filter"));
        assert!(text.contains("Gaspard2"));
    }
}
