//! Ablation: kernel-IR interpretation overhead (DESIGN.md §5.1).
//!
//! The simulator interprets kernel IR rather than running native code. This
//! bench compares the interpreted kernel against a hand-written native Rust
//! closure computing the same saxpy-style body, quantifying the interpreter
//! overhead per element, and measures the parallel-block scaling of the
//! interpreter.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simgpu::device::Device;
use simgpu::exec::LaunchConfig;
use simgpu::kir::{BinOp, Kernel, KernelArg, KernelBuilder, KernelFlavor, Special};
use std::hint::black_box;

const N: usize = 1 << 18;

fn saxpy_kernel() -> Kernel {
    let mut b = KernelBuilder::new("saxpy", KernelFlavor::Cuda);
    let x = b.buffer_param("x", false);
    let y = b.buffer_param("y", true);
    let n = b.scalar_param("n");
    let gid = b.special(Special::GlobalIdX);
    let nv = b.param_value(n);
    let oob = b.bin(BinOp::Le, nv, gid);
    b.begin_if(oob);
    b.ret();
    b.end_if();
    let xv = b.load(x, gid);
    let yv = b.load(y, gid);
    let a = b.constant(3);
    let ax = b.bin(BinOp::Mul, a, xv);
    let sum = b.bin(BinOp::Add, ax, yv);
    b.store(y, gid, sum);
    b.finish()
}

fn bench_interp(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_interp");
    group.sample_size(10);
    let xs: Vec<i32> = (0..N as i32).collect();
    let ys: Vec<i32> = (0..N as i32).map(|v| v * 2).collect();

    // Native baseline.
    group.bench_function("native_saxpy", |b| {
        b.iter(|| {
            let mut y = ys.clone();
            for i in 0..N {
                y[i] += 3 * xs[i];
            }
            black_box(y)
        })
    });

    // Interpreted on the simulator, at several host worker counts.
    let kernel = saxpy_kernel();
    for workers in [1usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("interpreted_saxpy", workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let mut device = Device::gtx480();
                    device.set_host_workers(workers);
                    let xb = device.malloc(N).unwrap();
                    let yb = device.malloc(N).unwrap();
                    device.poke(xb, &xs).unwrap();
                    device.poke(yb, &ys).unwrap();
                    device
                        .launch(
                            &kernel,
                            LaunchConfig::cover_1d(N, 256),
                            &[
                                KernelArg::Buffer(xb.0),
                                KernelArg::Buffer(yb.0),
                                KernelArg::Scalar(N as i64),
                            ],
                        )
                        .unwrap();
                    black_box(device.peek(yb).unwrap()[N - 1])
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_interp);
criterion_main!(benches);
