//! Microbenchmarks of the substrates: tiler gather/scatter, the ArrayOL
//! executor (sequential vs parallel), index iteration, and SaC parsing.

use arrayol::exec::{execute, ExecOptions};
use arrayol::{ApplicationGraph, IMat, Port, RepetitiveTask, TaskBody, Tiler};
use criterion::{criterion_group, criterion_main, Criterion};
use mdarray::{IndexIter, NdArray, Shape};
use std::collections::HashMap;
use std::hint::black_box;
use std::sync::Arc;

fn bench_tilers(c: &mut Criterion) {
    let mut group = c.benchmark_group("tiler");
    let frame = NdArray::from_fn([288usize, 352], |ix| (ix[0] * 352 + ix[1]) as i64);
    let tiler = Tiler::new(
        vec![0, -1],
        IMat::from_rows(&[&[0], &[1]]),
        IMat::from_rows(&[&[1, 0], &[0, 8]]),
    );
    let rep = Shape::new(vec![288, 44]);
    let pat = Shape::new(vec![11]);
    group.bench_function("gather_cif_11pattern", |b| {
        b.iter(|| black_box(tiler.gather(black_box(&frame), &rep, &pat).unwrap()))
    });

    let out_tiler = Tiler::new(
        vec![0, 0],
        IMat::from_rows(&[&[0], &[1]]),
        IMat::from_rows(&[&[1, 0], &[0, 3]]),
    );
    let out_pat = Shape::new(vec![3]);
    let tiles = out_tiler.gather(&NdArray::filled([288usize, 132], 5i64), &rep, &out_pat).unwrap();
    group.bench_function("scatter_cif_3pattern", |b| {
        b.iter(|| {
            let mut out = NdArray::filled([288usize, 132], 0i64);
            out_tiler.scatter(black_box(&tiles), &mut out, &rep, &out_pat).unwrap();
            black_box(out)
        })
    });
    group.bench_function("exact_cover_check", |b| {
        b.iter(|| {
            out_tiler.check_exact_cover(&Shape::new(vec![288, 132]), &rep, &out_pat).unwrap();
            black_box(())
        })
    });
    group.finish();
}

fn bench_arrayol_executor(c: &mut Criterion) {
    let mut group = c.benchmark_group("arrayol_exec");
    group.sample_size(10);
    // A 256x256 image, 4x4 block sums.
    let mut g = ApplicationGraph::new();
    let input = g.declare_array("in", [256usize, 256]);
    let output = g.declare_array("out", [64usize, 64]);
    g.external_inputs.push(input);
    g.external_outputs.push(output);
    let in_tiler = Tiler::new(vec![0, 0], IMat::identity(2), IMat::from_rows(&[&[4, 0], &[0, 4]]));
    let out_tiler = Tiler::new(vec![0, 0], IMat::zeros(2, 0), IMat::identity(2));
    g.add_task(RepetitiveTask {
        name: "sum".into(),
        repetition: Shape::new(vec![64, 64]),
        inputs: vec![Port::new("in", input, [4usize, 4], in_tiler)],
        outputs: vec![Port::new("out", output, Shape::scalar(), out_tiler)],
        body: TaskBody::Elementary {
            kernel_name: "sum".into(),
            f: Arc::new(|p| vec![NdArray::scalar(p[0].as_slice().iter().sum())]),
        },
    });
    let image = NdArray::from_fn([256usize, 256], |ix| (ix[0] ^ ix[1]) as i64);
    let mut inputs = HashMap::new();
    inputs.insert(input, image);

    group.bench_function("sequential", |b| {
        b.iter(|| black_box(execute(&g, &inputs, &ExecOptions::sequential()).unwrap()))
    });
    group.bench_function("parallel", |b| {
        b.iter(|| black_box(execute(&g, &inputs, &ExecOptions::parallel()).unwrap()))
    });
    group.finish();
}

fn bench_frontend(c: &mut Criterion) {
    let mut group = c.benchmark_group("frontend");
    let src = downscaler::sac_src::program_src(
        &downscaler::Scenario::hd1080(),
        downscaler::sac_src::Variant::NonGeneric,
        downscaler::sac_src::Part::Full,
    );
    group.bench_function("parse_downscaler", |b| {
        b.iter(|| black_box(sac_lang::parse_program(black_box(&src)).unwrap()))
    });

    let shape = Shape::new(vec![64, 64, 8]);
    group.bench_function("index_iteration_32k", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            IndexIter::for_each_index(&shape, |ix| acc += ix[2]);
            black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_tilers, bench_arrayol_executor, bench_frontend);
criterion_main!(benches);
