//! Ablation: WITH-loop folding on vs off (DESIGN.md §5.2).
//!
//! Measures (a) the optimiser's own cost with and without WLF and (b) the
//! real execution cost of the resulting programs — both sequentially and on
//! the simulated device, where the unfolded variant launches 3× the kernels
//! and materialises the intermediate arrays.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use downscaler::frames::FrameGenerator;
use downscaler::pipelines::build_sac;
use downscaler::sac_src::{Part, Variant};
use downscaler::Scenario;
use sac_cuda::exec::{run_on_device, HostCost};
use sac_lang::opt::OptConfig;
use simgpu::device::Device;
use std::hint::black_box;

fn configs() -> [(&'static str, OptConfig); 2] {
    [
        ("wlf_on", OptConfig::default()),
        ("wlf_off", OptConfig { with_loop_folding: false, resolve_modulo: true }),
    ]
}

fn bench_ablation(c: &mut Criterion) {
    let s = Scenario::cif();
    let frame = FrameGenerator::new(s.channels, s.rows, s.cols, 1).frame_rank3(0);
    let mut group = c.benchmark_group("ablation_wlf");
    group.sample_size(10);

    for (name, cfg) in configs() {
        group.bench_with_input(BenchmarkId::new("compile", name), &cfg, |b, cfg| {
            b.iter(|| black_box(build_sac(&s, Variant::NonGeneric, Part::Full, cfg).unwrap()))
        });
        let route = build_sac(&s, Variant::NonGeneric, Part::Full, &cfg).unwrap();
        group.bench_with_input(BenchmarkId::new("seq_run", name), &route, |b, route| {
            b.iter(|| {
                let mut ops = 0u64;
                black_box(
                    route.flat.run(black_box(std::slice::from_ref(&frame)), &mut ops).unwrap(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("gpu_run", name), &route, |b, route| {
            b.iter(|| {
                let mut device = Device::gtx480();
                black_box(
                    run_on_device(
                        &route.cuda,
                        &mut device,
                        black_box(std::slice::from_ref(&frame)),
                        HostCost::default(),
                    )
                    .unwrap(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
