//! Wall-clock companion to Table I: the GASPARD2 route per frame — the
//! transformation chain (compile time) and the generated-OpenCL execution
//! on the simulated device (run time).

use criterion::{criterion_group, criterion_main, Criterion};
use downscaler::frames::FrameGenerator;
use downscaler::pipelines::build_gaspard;
use downscaler::Scenario;
use simgpu::device::Device;
use std::hint::black_box;

fn bench_gaspard(c: &mut Criterion) {
    let s = Scenario::cif();
    let channels = FrameGenerator::new(s.channels, s.rows, s.cols, 1).frame_channels(0);

    let mut group = c.benchmark_group("table1_gaspard");
    group.sample_size(10);

    group.bench_function("mde_chain_compile", |b| {
        b.iter(|| black_box(build_gaspard(black_box(&s)).unwrap()))
    });

    let route = build_gaspard(&s).unwrap();
    group.bench_function("opencl_frame_cif", |b| {
        b.iter(|| {
            let mut device = Device::gtx480();
            black_box(
                gaspard::run_opencl(&route.opencl, &mut device, black_box(&channels)).unwrap(),
            )
        })
    });

    // Per-filter kernel execution (the Table I row granularity).
    let hf = &route.opencl.kernels[0];
    group.bench_function("single_hf_channel_kernel", |b| {
        b.iter(|| {
            let mut device = Device::gtx480();
            let inp = device.malloc(s.rows * s.cols).unwrap();
            let out = device.malloc(s.rows * s.h_out_cols()).unwrap();
            device
                .launch(
                    &hf.kernel,
                    hf.config,
                    &[simgpu::kir::KernelArg::Buffer(out.0), simgpu::kir::KernelArg::Buffer(inp.0)],
                )
                .unwrap();
            black_box(device.now_us())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_gaspard);
criterion_main!(benches);
