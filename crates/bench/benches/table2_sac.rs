//! Wall-clock companion to Table II: the SaC route per frame — front-end +
//! optimiser (compile time) and the 12-kernel execution on the simulated
//! device (run time), with per-filter breakdowns.

use criterion::{criterion_group, criterion_main, Criterion};
use downscaler::frames::FrameGenerator;
use downscaler::pipelines::build_sac;
use downscaler::sac_src::{Part, Variant};
use downscaler::Scenario;
use sac_cuda::exec::{run_on_device_opts, ExecOptions};
use simgpu::device::Device;
use std::hint::black_box;

fn bench_sac(c: &mut Criterion) {
    let s = Scenario::cif();
    let frame = FrameGenerator::new(s.channels, s.rows, s.cols, 1).frame_rank3(0);
    let mut group = c.benchmark_group("table2_sac");
    group.sample_size(10);

    group.bench_function("compiler_pipeline", |b| {
        b.iter(|| {
            black_box(
                build_sac(black_box(&s), Variant::NonGeneric, Part::Full, &Default::default())
                    .unwrap(),
            )
        })
    });

    let route = build_sac(&s, Variant::NonGeneric, Part::Full, &Default::default()).unwrap();
    let opts = ExecOptions { channel_chunks: s.channels, ..Default::default() };
    group.bench_function("cuda_frame_cif", |b| {
        b.iter(|| {
            let mut device = Device::gtx480();
            black_box(
                run_on_device_opts(
                    &route.cuda,
                    &mut device,
                    black_box(std::slice::from_ref(&frame)),
                    opts,
                )
                .unwrap(),
            )
        })
    });

    for (name, part) in [("h_filter_only", Part::Horizontal), ("v_filter_only", Part::Vertical)] {
        let r = build_sac(&s, Variant::NonGeneric, part, &Default::default()).unwrap();
        let input = if matches!(part, Part::Vertical) {
            downscaler::pipelines::reference_horizontal(&s, &frame)
        } else {
            frame.clone()
        };
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut device = Device::gtx480();
                black_box(
                    run_on_device_opts(
                        &r.cuda,
                        &mut device,
                        black_box(std::slice::from_ref(&input)),
                        opts,
                    )
                    .unwrap(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sac);
criterion_main!(benches);
