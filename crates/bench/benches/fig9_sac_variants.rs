//! Wall-clock companion to Figure 9: real execution time of each SaC
//! configuration (sequential flat evaluation vs simulated-GPU execution,
//! generic vs non-generic) on one CIF frame.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use downscaler::frames::FrameGenerator;
use downscaler::pipelines::build_sac;
use downscaler::sac_src::{Part, Variant};
use downscaler::Scenario;
use sac_cuda::exec::{run_on_device, HostCost};
use simgpu::device::Device;
use std::hint::black_box;

fn bench_fig9(c: &mut Criterion) {
    let s = Scenario::cif();
    let frame = FrameGenerator::new(s.channels, s.rows, s.cols, 1).frame_rank3(0);
    let mut group = c.benchmark_group("fig9");
    group.sample_size(10);

    for (name, variant) in [("generic", Variant::Generic), ("nongeneric", Variant::NonGeneric)] {
        let route = build_sac(&s, variant, Part::Full, &Default::default()).unwrap();
        group.bench_with_input(BenchmarkId::new("seq", name), &route, |b, route| {
            b.iter(|| {
                let mut ops = 0u64;
                black_box(
                    route.flat.run(black_box(std::slice::from_ref(&frame)), &mut ops).unwrap(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("cuda", name), &route, |b, route| {
            b.iter(|| {
                let mut device = Device::gtx480();
                black_box(
                    run_on_device(
                        &route.cuda,
                        &mut device,
                        black_box(std::slice::from_ref(&frame)),
                        HostCost::default(),
                    )
                    .unwrap(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);
