//! Reference CPU implementation — the golden model.
//!
//! Semantics follow the paper's tiler specifications exactly, including
//! ArrayOL's toroidal (modulo) addressing at frame edges:
//!
//! * horizontal (Figure 10): input pattern of 11 pixels every 8 columns,
//!   three 6-pixel windows at offsets {0, 2, 5} (Figure 5), output
//!   `t/6 - t%6`,
//! * vertical: input pattern of 13 rows every 9 rows, anchored 3 rows above
//!   the tile (origin −3), four 6-pixel windows at offsets {0, 2, 5, 7}.

use mdarray::NdArray;

/// One directional filter: gathers `pattern` elements every `step`, emits
/// one output per window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilterSpec {
    /// Input pattern length.
    pub pattern: usize,
    /// Tiler origin along the filtered dimension (may be negative).
    pub origin: i64,
    /// Paving step along the filtered dimension.
    pub step: usize,
    /// Window offsets within the pattern (one output pixel per window).
    pub windows: Vec<usize>,
    /// Window length.
    pub window_len: usize,
    /// Interpolation divisor.
    pub divisor: i64,
}

impl FilterSpec {
    /// The paper's horizontal filter: 8 → 3, 11-pattern, windows {0,2,5}
    /// (exactly the index sets of Figure 5's `tmp0`/`tmp1`/`tmp2`), anchored
    /// one pixel left of the tile (origin −1). The anchor makes the first
    /// and last windows wrap at the frame edge, which is what splits the
    /// folded WITH-loop into the paper's five generators (Figure 8); see
    /// EXPERIMENTS.md for the origin-0 ablation (four generators).
    pub fn paper_horizontal() -> Self {
        FilterSpec {
            pattern: 11,
            origin: -1,
            step: 8,
            windows: vec![0, 2, 5],
            window_len: 6,
            divisor: 6,
        }
    }

    /// The paper's vertical filter: 9 → 4, 13-pattern centred one half-tile
    /// up (origin −3), windows {0,2,5,7}.
    pub fn paper_vertical() -> Self {
        FilterSpec {
            pattern: 13,
            origin: -3,
            step: 9,
            windows: vec![0, 2, 5, 7],
            window_len: 6,
            divisor: 6,
        }
    }

    /// Outputs per tile.
    pub fn outputs_per_tile(&self) -> usize {
        self.windows.len()
    }

    /// The paper's interpolation arithmetic on one window sum.
    #[inline]
    pub fn interpolate(&self, t: i64) -> i64 {
        t / self.divisor - t % self.divisor
    }
}

/// Apply a filter along the columns of a 2-D channel plane.
///
/// `[rows, cols]` → `[rows, cols/step * windows]`, toroidal addressing.
pub fn horizontal_filter(ch: &NdArray<i64>, spec: &FilterSpec) -> NdArray<i64> {
    let rows = ch.shape().dim(0);
    let cols = ch.shape().dim(1);
    let tiles = cols / spec.step;
    let k = spec.outputs_per_tile();
    let out_cols = tiles * k;
    let src = ch.as_slice();
    let mut out = Vec::with_capacity(rows * out_cols);
    for i in 0..rows {
        let row = &src[i * cols..(i + 1) * cols];
        for t in 0..tiles {
            let base = spec.origin + (t * spec.step) as i64;
            for &w in &spec.windows {
                let mut sum = 0i64;
                for p in 0..spec.window_len {
                    let c = (base + (w + p) as i64).rem_euclid(cols as i64) as usize;
                    sum += row[c];
                }
                out.push(spec.interpolate(sum));
            }
        }
    }
    NdArray::from_vec([rows, out_cols], out).expect("length matches")
}

/// Apply a filter along the rows of a 2-D channel plane.
///
/// `[rows, cols]` → `[rows/step * windows, cols]`, toroidal addressing.
pub fn vertical_filter(ch: &NdArray<i64>, spec: &FilterSpec) -> NdArray<i64> {
    let rows = ch.shape().dim(0);
    let cols = ch.shape().dim(1);
    let tiles = rows / spec.step;
    let k = spec.outputs_per_tile();
    let out_rows = tiles * k;
    let src = ch.as_slice();
    let mut out = vec![0i64; out_rows * cols];
    for t in 0..tiles {
        let base = spec.origin + (t * spec.step) as i64;
        for (ki, &w) in spec.windows.iter().enumerate() {
            let orow = t * k + ki;
            for j in 0..cols {
                let mut sum = 0i64;
                for p in 0..spec.window_len {
                    let r = (base + (w + p) as i64).rem_euclid(rows as i64) as usize;
                    sum += src[r * cols + j];
                }
                out[orow * cols + j] = spec.interpolate(sum);
            }
        }
    }
    NdArray::from_vec([out_rows, cols], out).expect("length matches")
}

/// Full per-channel downscale: horizontal then vertical.
pub fn downscale_channel(ch: &NdArray<i64>, h: &FilterSpec, v: &FilterSpec) -> NdArray<i64> {
    vertical_filter(&horizontal_filter(ch, h), v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;

    #[test]
    fn horizontal_shapes_follow_spec() {
        let s = Scenario::tiny();
        let ch = NdArray::filled([s.rows, s.cols], 6i64);
        let out = horizontal_filter(&ch, &s.h);
        assert_eq!(out.shape().dims(), &[s.rows, s.h_out_cols()]);
        // Constant input of value 6: window sum 36 -> 36/6 - 0 = 6.
        assert!(out.as_slice().iter().all(|&v| v == 6));
    }

    #[test]
    fn vertical_shapes_follow_spec() {
        let s = Scenario::tiny();
        let ch = NdArray::filled([s.rows, s.h_out_cols()], 12i64);
        let out = vertical_filter(&ch, &s.v);
        assert_eq!(out.shape().dims(), &[s.v_out_rows(), s.h_out_cols()]);
        assert!(out.as_slice().iter().all(|&v| v == 12));
    }

    #[test]
    fn interpolation_matches_figure5_arithmetic() {
        // Tile 0 windows {0,2,5} sum 6 consecutive pixels starting at
        // origin + offset; expectations computed from the spec itself.
        let cols = 16usize;
        let ch = NdArray::from_fn([1usize, cols], |ix| (ix[1] * ix[1] % 97) as i64);
        let spec = FilterSpec::paper_horizontal();
        let out = horizontal_filter(&ch, &spec);
        for (k, &w) in spec.windows.iter().enumerate() {
            let t: i64 = (0..spec.window_len)
                .map(|p| {
                    let c = (spec.origin + (w + p) as i64).rem_euclid(cols as i64) as usize;
                    ch.as_slice()[c]
                })
                .sum();
            assert_eq!(out.as_slice()[k], t / 6 - t % 6, "window {k}");
        }
    }

    #[test]
    fn horizontal_wraps_toroidally() {
        // Origin -1 makes tile 0's first window read column -1 -> cols-1;
        // the last tile's last window runs past the right edge.
        let cols = 16usize;
        let ch = NdArray::from_fn([1usize, cols], |ix| if ix[1] >= 12 { 600 } else { 0 });
        let spec = FilterSpec::paper_horizontal();
        let out = horizontal_filter(&ch, &spec);
        // Tile 0, window 0: columns -1..5 -> wraps once to column 15.
        assert_eq!(out.as_slice()[0], spec.interpolate(600));
        // Tile 1, window 2 (offset 5): base 7, columns 12..18 -> 12,13,14,15
        // hit, 16,17 wrap to 0,1 (zeros).
        assert_eq!(out.as_slice()[5], spec.interpolate(4 * 600));
    }

    #[test]
    fn vertical_negative_origin_wraps() {
        // Tile 0 reads rows -3..10; rows -3,-2,-1 wrap to 6,7,8 (rows=9).
        let ch = NdArray::from_fn([9usize, 1], |ix| 10i64.pow(ix[0] as u32 % 9) % 1000);
        let spec = FilterSpec::paper_vertical();
        let out = vertical_filter(&ch, &spec);
        // First output row sums rows (-3..3) mod 9 = {6,7,8,0,1,2}.
        let s: i64 = [6, 7, 8, 0, 1, 2].iter().map(|&r| 10i64.pow(r as u32 % 9) % 1000).sum();
        assert_eq!(out.as_slice()[0], spec.interpolate(s));
    }

    #[test]
    fn downscale_channel_composes() {
        let s = Scenario::tiny();
        let ch = NdArray::from_fn([s.rows, s.cols], |ix| ((ix[0] * 31 + ix[1] * 7) % 256) as i64);
        let out = downscale_channel(&ch, &s.h, &s.v);
        let (orows, ocols) = s.out_shape();
        assert_eq!(out.shape().dims(), &[orows, ocols]);
        // Spot-check one pixel against a hand computation.
        let hout = horizontal_filter(&ch, &s.h);
        let vout = vertical_filter(&hout, &s.v);
        assert_eq!(out, vout);
    }

    #[test]
    fn hd_dimensions_produce_dvd_output() {
        // Shape-only check at full scale (no content sweep).
        let s = Scenario::hd1080();
        let ch = NdArray::filled([s.rows, s.cols], 0i64);
        let h = horizontal_filter(&ch, &s.h);
        assert_eq!(h.shape().dims(), &[1080, 720]);
        let v = vertical_filter(&h, &s.v);
        assert_eq!(v.shape().dims(), &[480, 720]);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// A constant frame downscales to the same constant: every window sum
        /// is `6c`, and `6c/6 - 6c%6 = c`. Holds for both filters at any
        /// valid size, which pins the interpolation normalisation.
        #[test]
        fn constant_frames_are_fixed_points(
            c in 0i64..=255,
            rt in 1usize..4,
            ct in 1usize..4,
        ) {
            let rows = 9 * rt;
            let cols = 8 * ct;
            let ch = NdArray::filled([rows, cols], c);
            let h = horizontal_filter(&ch, &FilterSpec::paper_horizontal());
            prop_assert!(h.as_slice().iter().all(|&v| v == c));
            let v = vertical_filter(&h, &FilterSpec::paper_vertical());
            prop_assert!(v.as_slice().iter().all(|&v| v == c));
        }

        /// Output shapes follow the 8→3 / 9→4 ratios for any multiple sizes.
        #[test]
        fn output_shapes(rt in 1usize..6, ct in 1usize..6) {
            let rows = 9 * rt;
            let cols = 8 * ct;
            let ch = NdArray::filled([rows, cols], 1i64);
            let out = downscale_channel(
                &ch,
                &FilterSpec::paper_horizontal(),
                &FilterSpec::paper_vertical(),
            );
            prop_assert_eq!(out.shape().dims(), &[4 * rt, 3 * ct]);
        }
    }
}
