#![warn(missing_docs)]

//! # downscaler — the paper's H.263 video-compression case study
//!
//! A classical downscaler: a **horizontal filter** reduces the columns of
//! each frame 8 → 3 (CIF 352 → 132, HD 1920 → 720) and a **vertical filter**
//! reduces the rows 9 → 4 (288 → 128, 1080 → 480), per RGB channel, by
//! interpolating 6-pixel windows with the paper's `t/6 - t%6` arithmetic
//! (Figure 5).
//!
//! The crate provides every form of the application the paper compares:
//!
//! * [`filter`] — a direct Rust reference implementation (the golden model
//!   every route is bit-checked against),
//! * [`frames`] — deterministic synthetic video I/O (substituting the
//!   paper's OpenCV `FrameGenerator`/`FrameConstructor` IPs; see DESIGN.md),
//! * [`sac_src`] — the SaC sources: the *generic* variant (Figures 4–6:
//!   reusable tiler functions, `for`-loop output tiler) and the
//!   *non-generic* variant (Figure 7: WITH-loop output tiler that WLF can
//!   fold),
//! * [`model`] — the GASPARD2/MARTE model (Figures 3 and 10: per-channel
//!   repetitive filter tasks wired by tiler connectors),
//! * [`scenario`] — problem-size presets (HD 1080×1920 as evaluated, CIF,
//!   and test-sized variants),
//! * [`pipelines`] — one-call builders that compile each route end to end.

pub mod filter;
pub mod frames;
pub mod model;
pub mod pipelines;
pub mod sac_src;
pub mod scenario;

pub use filter::{downscale_channel, horizontal_filter, vertical_filter, FilterSpec};
pub use frames::{FrameGenerator, FrameSink};
pub use scenario::Scenario;
