//! Synthetic frame I/O.
//!
//! The paper's GASPARD2 model reads frames "from a video file or camera
//! using the OpenCV library" and writes them "out to a file or display
//! device". Neither is available (or useful) here, so the substitution
//! documented in DESIGN.md applies: a deterministic synthetic generator that
//! produces video-like content (smooth gradients plus a moving block, per
//! channel), and a sink that checksums frames (optionally rendering PPM).

use mdarray::{ops::checksum, NdArray};

/// Deterministic synthetic video source.
///
/// Pixel values are 8-bit (0..=255) like the paper's 24-bit RGB frames.
#[derive(Debug, Clone)]
pub struct FrameGenerator {
    channels: usize,
    rows: usize,
    cols: usize,
    seed: u64,
    next_frame: usize,
}

impl FrameGenerator {
    /// A generator for `channels` planes of `rows × cols` pixels.
    pub fn new(channels: usize, rows: usize, cols: usize, seed: u64) -> Self {
        FrameGenerator { channels, rows, cols, seed, next_frame: 0 }
    }

    /// Pixel function: gradient + per-frame moving feature, per channel.
    fn pixel(&self, frame: usize, c: usize, i: usize, j: usize) -> i64 {
        // Smooth background gradient.
        let grad = (i * 2 + j * 3 + c * 85) % 256;
        // A moving bright block (the "signal").
        let bi = (frame * 7 + c * 13) % self.rows;
        let bj = (frame * 11) % self.cols;
        let in_block = i.abs_diff(bi) < 8 && j.abs_diff(bj) < 8;
        // A little deterministic texture.
        let h = self
            .seed
            .wrapping_mul(0x9e3779b97f4a7c15)
            .wrapping_add((frame as u64) << 40)
            .wrapping_add((c as u64) << 32)
            .wrapping_add((i as u64) << 16)
            .wrapping_add(j as u64);
        let noise = (h.wrapping_mul(0xbf58476d1ce4e5b9) >> 56) % 16;
        let v = if in_block { 255 - noise as i64 } else { (grad as i64 + noise as i64).min(255) };
        v.clamp(0, 255)
    }

    /// Produce frame `index` as separate channel planes.
    pub fn frame_channels(&self, index: usize) -> Vec<NdArray<i64>> {
        (0..self.channels)
            .map(|c| {
                NdArray::from_fn([self.rows, self.cols], |ix| self.pixel(index, c, ix[0], ix[1]))
            })
            .collect()
    }

    /// Produce frame `index` as one rank-3 `[channels, rows, cols]` array
    /// (the layout the SaC programs use).
    pub fn frame_rank3(&self, index: usize) -> NdArray<i64> {
        NdArray::from_fn([self.channels, self.rows, self.cols], |ix| {
            self.pixel(index, ix[0], ix[1], ix[2])
        })
    }

    /// Iterator-style: next frame as channel planes.
    pub fn next_channels(&mut self) -> Vec<NdArray<i64>> {
        let f = self.frame_channels(self.next_frame);
        self.next_frame += 1;
        f
    }

    /// Stack channel planes into a rank-3 array.
    pub fn stack(channels: &[NdArray<i64>]) -> NdArray<i64> {
        let c = channels.len();
        let rows = channels[0].shape().dim(0);
        let cols = channels[0].shape().dim(1);
        let mut data = Vec::with_capacity(c * rows * cols);
        for ch in channels {
            assert_eq!(ch.shape().dims(), &[rows, cols], "ragged channel planes");
            data.extend_from_slice(ch.as_slice());
        }
        NdArray::from_vec([c, rows, cols], data).expect("length matches")
    }

    /// Split a rank-3 array back into channel planes.
    pub fn unstack(frame: &NdArray<i64>) -> Vec<NdArray<i64>> {
        let c = frame.shape().dim(0);
        (0..c).map(|ch| frame.subarray(&[ch]).expect("in range")).collect()
    }
}

/// Frame sink: accumulates a rolling checksum (and counts frames) in place
/// of writing to a display; can render a channel plane as ASCII PPM.
#[derive(Debug, Clone, Default)]
pub struct FrameSink {
    /// Frames consumed.
    pub frames: usize,
    /// Rolling checksum over all consumed frames.
    pub digest: u64,
}

impl FrameSink {
    /// A fresh sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consume one frame (any number of channel planes).
    pub fn consume(&mut self, channels: &[NdArray<i64>]) {
        for ch in channels {
            self.digest =
                self.digest.rotate_left(13).wrapping_add(checksum(ch)).wrapping_mul(0x100000001b3);
        }
        self.frames += 1;
    }

    /// Render one channel plane as a plain-text PGM image (for eyeballing).
    pub fn to_pgm(ch: &NdArray<i64>) -> String {
        let rows = ch.shape().dim(0);
        let cols = ch.shape().dim(1);
        let mut out = format!("P2\n{cols} {rows}\n255\n");
        for i in 0..rows {
            let row: Vec<String> =
                (0..cols).map(|j| ch.get(&[i, j]).unwrap().clamp(&0, &255).to_string()).collect();
            out.push_str(&row.join(" "));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_are_deterministic() {
        let g1 = FrameGenerator::new(3, 18, 32, 42);
        let g2 = FrameGenerator::new(3, 18, 32, 42);
        assert_eq!(g1.frame_channels(5), g2.frame_channels(5));
        let g3 = FrameGenerator::new(3, 18, 32, 43);
        assert_ne!(g1.frame_channels(5), g3.frame_channels(5));
    }

    #[test]
    fn frames_vary_over_time_and_channel() {
        let g = FrameGenerator::new(3, 18, 32, 7);
        assert_ne!(g.frame_channels(0), g.frame_channels(1));
        let f = g.frame_channels(0);
        assert_ne!(f[0], f[1]);
    }

    #[test]
    fn pixel_range_is_8bit() {
        let g = FrameGenerator::new(1, 27, 40, 9);
        for ch in g.frame_channels(3) {
            assert!(ch.as_slice().iter().all(|&v| (0..=255).contains(&v)));
        }
    }

    #[test]
    fn stack_unstack_roundtrip() {
        let g = FrameGenerator::new(3, 9, 16, 1);
        let planes = g.frame_channels(0);
        let stacked = FrameGenerator::stack(&planes);
        assert_eq!(stacked.shape().dims(), &[3, 9, 16]);
        assert_eq!(stacked, g.frame_rank3(0));
        assert_eq!(FrameGenerator::unstack(&stacked), planes);
    }

    #[test]
    fn sink_checksums_depend_on_content_and_order() {
        let g = FrameGenerator::new(1, 9, 16, 1);
        let a = g.frame_channels(0);
        let b = g.frame_channels(1);
        let mut s1 = FrameSink::new();
        s1.consume(&a);
        s1.consume(&b);
        let mut s2 = FrameSink::new();
        s2.consume(&b);
        s2.consume(&a);
        assert_eq!(s1.frames, 2);
        assert_ne!(s1.digest, s2.digest);
    }

    #[test]
    fn pgm_rendering() {
        let ch = NdArray::from_fn([2usize, 3], |ix| (ix[0] * 3 + ix[1]) as i64 * 40);
        let pgm = FrameSink::to_pgm(&ch);
        assert!(pgm.starts_with("P2\n3 2\n255\n"));
        assert!(pgm.contains("0 40 80"));
    }
}
