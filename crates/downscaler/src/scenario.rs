//! Problem-size presets.

use crate::filter::FilterSpec;
use crate::pipelines::PipelineError;

/// A downscaler problem instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scenario {
    /// Preset name.
    pub name: String,
    /// Colour channels (3 = RGB).
    pub channels: usize,
    /// Input frame rows.
    pub rows: usize,
    /// Input frame columns.
    pub cols: usize,
    /// Frames per run (the paper uses 300 iterations).
    pub frames: usize,
    /// Horizontal filter (along columns).
    pub h: FilterSpec,
    /// Vertical filter (along rows).
    pub v: FilterSpec,
}

impl Scenario {
    /// Build a scenario with the paper's 8→3 horizontal / 9→4 vertical
    /// interpolation. `rows` must be divisible by 9 and `cols` by 8;
    /// violations are typed [`PipelineError::Config`] errors, never panics,
    /// so registries and sweeps can enumerate candidate sizes safely.
    pub fn new(
        name: &str,
        channels: usize,
        rows: usize,
        cols: usize,
        frames: usize,
    ) -> Result<Self, PipelineError> {
        if !rows.is_multiple_of(9) {
            return Err(PipelineError::Config(format!(
                "scenario '{name}': rows {rows} must be divisible by 9 (9->4 vertical scaling)"
            )));
        }
        if !cols.is_multiple_of(8) {
            return Err(PipelineError::Config(format!(
                "scenario '{name}': cols {cols} must be divisible by 8 (8->3 horizontal scaling)"
            )));
        }
        Ok(Scenario {
            name: name.into(),
            channels,
            rows,
            cols,
            frames,
            h: FilterSpec::paper_horizontal(),
            v: FilterSpec::paper_vertical(),
        })
    }

    /// The paper's evaluation setting: 1080×1920 HD frames, RGB,
    /// 300 iterations (§VIII).
    pub fn hd1080() -> Self {
        Scenario::new("hd1080", 3, 1080, 1920, 300).expect("preset dimensions are valid")
    }

    /// CIF input (352×288) as in the case-study introduction (§III):
    /// 352 → 132 columns, 288 → 128 rows, 2000 frames of a 25 fps /
    /// 80 second clip.
    pub fn cif() -> Self {
        Scenario::new("cif", 3, 288, 352, 2000).expect("preset dimensions are valid")
    }

    /// A small but structurally faithful instance for tests.
    pub fn tiny() -> Self {
        Scenario::new("tiny", 3, 18, 32, 2).expect("preset dimensions are valid")
    }

    /// A single-channel micro instance for the fastest tests.
    pub fn micro() -> Self {
        Scenario::new("micro", 1, 9, 16, 1).expect("preset dimensions are valid")
    }

    /// Output columns of the horizontal filter.
    pub fn h_out_cols(&self) -> usize {
        self.cols / self.h.step * self.h.windows.len()
    }

    /// Horizontal repetition tiles per row.
    pub fn h_tiles(&self) -> usize {
        self.cols / self.h.step
    }

    /// Output rows of the vertical filter.
    pub fn v_out_rows(&self) -> usize {
        self.rows / self.v.step * self.v.windows.len()
    }

    /// Vertical repetition tiles per column.
    pub fn v_tiles(&self) -> usize {
        self.rows / self.v.step
    }

    /// Final output shape per channel: (rows, cols).
    pub fn out_shape(&self) -> (usize, usize) {
        (self.v_out_rows(), self.h_out_cols())
    }

    /// Bytes of one input frame (all channels, 32-bit pixels).
    pub fn frame_bytes(&self) -> usize {
        self.channels * self.rows * self.cols * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hd_matches_paper_dimensions() {
        let s = Scenario::hd1080();
        assert_eq!(s.h_out_cols(), 720);
        assert_eq!(s.v_out_rows(), 480);
        assert_eq!(s.out_shape(), (480, 720)); // the DVD resolution of Figure 2
        assert_eq!(s.h_tiles(), 240);
        assert_eq!(s.v_tiles(), 120);
        assert_eq!(s.frames, 300);
        // 1080*1920*4 bytes per channel ≈ 8.29 MB (Table I's H2D unit).
        assert_eq!(s.frame_bytes(), 3 * 8_294_400);
    }

    #[test]
    fn cif_matches_section3() {
        let s = Scenario::cif();
        assert_eq!(s.h_out_cols(), 132);
        assert_eq!(s.v_out_rows(), 128);
    }

    #[test]
    fn tiny_is_consistent() {
        let s = Scenario::tiny();
        assert_eq!(s.h_out_cols(), 12);
        assert_eq!(s.v_out_rows(), 8);
    }

    #[test]
    fn rejects_bad_rows_as_typed_error() {
        let err = Scenario::new("bad", 1, 10, 16, 1);
        assert!(
            matches!(&err, Err(PipelineError::Config(m)) if m.contains("divisible by 9")),
            "{err:?}"
        );
    }

    #[test]
    fn rejects_bad_cols_as_typed_error() {
        let err = Scenario::new("bad", 1, 9, 15, 1);
        assert!(
            matches!(&err, Err(PipelineError::Config(m)) if m.contains("divisible by 8")),
            "{err:?}"
        );
    }

    /// The ISSUE 8 regression shape: a 17×33 request — indivisible on both
    /// axes — is a typed configuration error, not a panic.
    #[test]
    fn arbitrary_bad_request_is_an_error_not_a_panic() {
        let err = Scenario::new("odd", 3, 17, 33, 1);
        assert!(matches!(err, Err(PipelineError::Config(_))), "{err:?}");
    }
}
