//! The downscaler's GASPARD2/MARTE model (the paper's Figures 3 and 10).
//!
//! Structure, mirroring Figure 3:
//!
//! ```text
//! Downscaler
//!   fg: FrameGenerator ──r,g,b──► hf: HorizontalFilter ──► vf: VerticalFilter ──► fc: FrameConstructor
//! ```
//!
//! `HorizontalFilter` is "hierarchically composed by three elementary tasks
//! that become kernels in the GPU environment" — one repetitive task per
//! colour channel (`rhf`, `ghf`, `bhf`), each carrying the Figure 10 tiler
//! specification; likewise the vertical filter.

use crate::filter::FilterSpec;
use crate::scenario::Scenario;
use gaspard::model::*;

/// Build the repetitive channel-filter component for one direction.
///
/// `dim` = 0 filters rows (vertical), `dim` = 1 filters columns (horizontal),
/// over per-channel `[rows, cols]` planes.
fn channel_filter(
    name: &str,
    task: &str,
    spec: &FilterSpec,
    dim: usize,
    in_shape: [usize; 2],
) -> Component {
    let tiles = in_shape[dim] / spec.step;
    let k = spec.outputs_per_tile();
    let mut out_shape = in_shape;
    out_shape[dim] = tiles * k;
    let repetition = if dim == 1 { vec![in_shape[0], tiles] } else { vec![tiles, in_shape[1]] };
    let unit = |d: usize| {
        if d == 0 {
            vec![vec![1], vec![0]]
        } else {
            vec![vec![0], vec![1]]
        }
    };
    let mut in_origin = vec![0i64, 0];
    in_origin[dim] = spec.origin;
    // Paving rows map repetition components to array offsets. With the
    // repetition ordered (rows, tiles) or (tiles, cols), the filtered
    // dimension advances by `step` per tile and the other dimension by 1.
    let in_paving = if dim == 1 {
        vec![vec![1, 0], vec![0, spec.step as i64]]
    } else {
        vec![vec![spec.step as i64, 0], vec![0, 1]]
    };
    let out_paving = if dim == 1 {
        vec![vec![1, 0], vec![0, k as i64]]
    } else {
        vec![vec![k as i64, 0], vec![0, 1]]
    };
    Component {
        name: name.into(),
        stereotype: Stereotype::SwResource,
        ports: vec![
            Port { name: "fin".into(), dir: PortDir::In, shape: in_shape.to_vec() },
            Port { name: "fout".into(), dir: PortDir::Out, shape: out_shape.to_vec() },
        ],
        kind: ComponentKind::Repetitive {
            repetition,
            inner: task.into(),
            input_tilers: vec![(
                vec![spec.pattern],
                TilerSpec { origin: in_origin, fitting: unit(dim), paving: in_paving },
            )],
            output_tilers: vec![(
                vec![k],
                TilerSpec { origin: vec![0, 0], fitting: unit(dim), paving: out_paving },
            )],
        },
    }
}

/// The elementary interpolation task (the IP of Figure 5's arithmetic).
fn interp_task(name: &str, spec: &FilterSpec) -> Component {
    Component {
        name: name.into(),
        stereotype: Stereotype::SwResource,
        ports: vec![
            Port { name: "pin".into(), dir: PortDir::In, shape: vec![spec.pattern] },
            Port { name: "pout".into(), dir: PortDir::Out, shape: vec![spec.outputs_per_tile()] },
        ],
        kind: ComponentKind::Elementary {
            op: ElementaryOp::InterpolateWindows {
                windows: spec
                    .windows
                    .iter()
                    .map(|&w| WindowSpec { offset: w, len: spec.window_len })
                    .collect(),
                divisor: spec.divisor,
            },
        },
    }
}

/// A per-channel filter composite (`HorizontalFilter` / `VerticalFilter` of
/// Figure 3): one part per channel, external ports `in0..`/`out0..`.
fn filter_composite(
    name: &str,
    channel_comp: &str,
    channels: usize,
    in_shape: [usize; 2],
    out_shape: [usize; 2],
    channel_prefixes: &[&str],
) -> Component {
    let mut ports = Vec::new();
    let mut parts = Vec::new();
    let mut connections = Vec::new();
    for c in 0..channels {
        ports.push(Port { name: format!("in{c}"), dir: PortDir::In, shape: in_shape.to_vec() });
        ports.push(Port { name: format!("out{c}"), dir: PortDir::Out, shape: out_shape.to_vec() });
        let inst = channel_prefixes.get(c).copied().unwrap_or("chf").to_string();
        parts.push((inst.clone(), channel_comp.to_string()));
        connections.push(Connection {
            from: PartRef::External { port: format!("in{c}") },
            to: PartRef::Part { part: inst.clone(), port: "fin".into() },
        });
        connections.push(Connection {
            from: PartRef::Part { part: inst, port: "fout".into() },
            to: PartRef::External { port: format!("out{c}") },
        });
    }
    Component {
        name: name.into(),
        stereotype: Stereotype::SwResource,
        ports,
        kind: ComponentKind::Composite { parts, connections },
    }
}

/// Build the full downscaler model plus its allocation (filters on the GPU,
/// frame I/O on the CPU).
pub fn downscaler_model(s: &Scenario) -> (Model, Allocation) {
    let in_shape = [s.rows, s.cols];
    let mid_shape = [s.rows, s.h_out_cols()];
    let out_shape = [s.v_out_rows(), s.h_out_cols()];
    let channel_names: Vec<&str> = ["r", "g", "b"].into_iter().take(s.channels).collect();
    let h_parts: Vec<String> = channel_names.iter().map(|c| format!("{c}hf")).collect();
    let v_parts: Vec<String> = channel_names.iter().map(|c| format!("{c}vf")).collect();

    let source = Component {
        name: "FrameGenerator".into(),
        stereotype: Stereotype::SwResource,
        ports: (0..s.channels)
            .map(|c| Port { name: format!("ch{c}"), dir: PortDir::Out, shape: in_shape.to_vec() })
            .collect(),
        kind: ComponentKind::FrameSource,
    };
    let sink = Component {
        name: "FrameConstructor".into(),
        stereotype: Stereotype::SwResource,
        ports: (0..s.channels)
            .map(|c| Port { name: format!("ch{c}"), dir: PortDir::In, shape: out_shape.to_vec() })
            .collect(),
        kind: ComponentKind::FrameSink,
    };

    let mut root_connections = Vec::new();
    for c in 0..s.channels {
        root_connections.push(Connection {
            from: PartRef::Part { part: "fg".into(), port: format!("ch{c}") },
            to: PartRef::Part { part: "hf".into(), port: format!("in{c}") },
        });
        root_connections.push(Connection {
            from: PartRef::Part { part: "hf".into(), port: format!("out{c}") },
            to: PartRef::Part { part: "vf".into(), port: format!("in{c}") },
        });
        root_connections.push(Connection {
            from: PartRef::Part { part: "vf".into(), port: format!("out{c}") },
            to: PartRef::Part { part: "fc".into(), port: format!("ch{c}") },
        });
    }
    let root = Component {
        name: "Downscaler".into(),
        stereotype: Stereotype::SwResource,
        ports: vec![],
        kind: ComponentKind::Composite {
            parts: vec![
                ("fg".into(), "FrameGenerator".into()),
                ("hf".into(), "HorizontalFilter".into()),
                ("vf".into(), "VerticalFilter".into()),
                ("fc".into(), "FrameConstructor".into()),
            ],
            connections: root_connections,
        },
    };

    let model = Model {
        name: "downscaler".into(),
        components: vec![
            interp_task("HTask", &s.h),
            interp_task("VTask", &s.v),
            channel_filter("HFilterChannel", "HTask", &s.h, 1, in_shape),
            channel_filter("VFilterChannel", "VTask", &s.v, 0, mid_shape),
            filter_composite(
                "HorizontalFilter",
                "HFilterChannel",
                s.channels,
                in_shape,
                mid_shape,
                &h_parts.iter().map(String::as_str).collect::<Vec<_>>(),
            ),
            filter_composite(
                "VerticalFilter",
                "VFilterChannel",
                s.channels,
                mid_shape,
                out_shape,
                &v_parts.iter().map(String::as_str).collect::<Vec<_>>(),
            ),
            source,
            sink,
            root,
        ],
        root: "Downscaler".into(),
    };
    let alloc = Allocation::default()
        .allocate("FrameGenerator", "i7_930")
        .allocate("FrameConstructor", "i7_930")
        .allocate("HFilterChannel", "gtx480")
        .allocate("VFilterChannel", "gtx480");
    (model, alloc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaspard::transform::{deploy, schedule, to_arrayol};
    use gaspard::Platform;

    #[test]
    fn model_validates_and_deploys() {
        let s = Scenario::tiny();
        let (model, alloc) = downscaler_model(&s);
        gaspard::marte::validate(&model).unwrap();
        deploy(model, Platform::cpu_gpu(), alloc).unwrap();
    }

    #[test]
    fn schedule_produces_six_channel_kernels() {
        // "We have three kernels to do the horizontal filter and three to do
        // the vertical filter as well." (§VIII.B)
        let s = Scenario::tiny();
        let (model, alloc) = downscaler_model(&s);
        let dep = deploy(model, Platform::cpu_gpu(), alloc).unwrap();
        let sm = schedule(&dep).unwrap();
        assert_eq!(sm.kernels.len(), 6);
        let names: Vec<&str> = sm.kernels.iter().map(|k| k.name.as_str()).collect();
        for n in ["hf_rhf", "hf_ghf", "hf_bhf", "vf_rvf", "vf_gvf", "vf_bvf"] {
            assert!(names.contains(&n), "missing kernel {n}; got {names:?}");
        }
        assert_eq!(sm.inputs.len(), 3);
        assert_eq!(sm.outputs.len(), 3);
    }

    #[test]
    fn hd_matches_figure10_tiler_numbers() {
        let s = Scenario::hd1080();
        let (model, alloc) = downscaler_model(&s);
        let dep = deploy(model, Platform::cpu_gpu(), alloc).unwrap();
        let sm = schedule(&dep).unwrap();
        let bhf = sm.kernels.iter().find(|k| k.name == "hf_bhf").unwrap();
        // Figure 10: array {1080,1920}, pattern {11},
        // paving {{1,0},{0,8}}, repetition {1080,240}.
        assert_eq!(sm.arrays[bhf.input].shape, vec![1080, 1920]);
        assert_eq!(bhf.in_pattern, vec![11]);
        assert_eq!(bhf.in_tiler.paving, vec![vec![1, 0], vec![0, 8]]);
        assert_eq!(bhf.repetition, vec![1080, 240]);
        // Output side: pattern {3}, paving {{1,0},{0,3}}, array {1080,720}.
        assert_eq!(bhf.out_pattern, vec![3]);
        assert_eq!(bhf.out_tiler.paving, vec![vec![1, 0], vec![0, 3]]);
        assert_eq!(sm.arrays[bhf.output].shape, vec![1080, 720]);
    }

    #[test]
    fn arrayol_projection_matches_reference_filters() {
        let s = Scenario::tiny();
        let (model, alloc) = downscaler_model(&s);
        let dep = deploy(model, Platform::cpu_gpu(), alloc).unwrap();
        let sm = schedule(&dep).unwrap();
        let g = to_arrayol(&sm).unwrap();

        let gen = crate::frames::FrameGenerator::new(s.channels, s.rows, s.cols, 5);
        let channels = gen.frame_channels(0);
        let mut inputs = std::collections::HashMap::new();
        for (i, ch) in channels.iter().enumerate() {
            inputs.insert(g.external_inputs[i], ch.clone());
        }
        let out =
            arrayol::exec::execute(&g, &inputs, &arrayol::exec::ExecOptions::sequential()).unwrap();
        for (c, ch) in channels.iter().enumerate() {
            let expect = crate::filter::downscale_channel(ch, &s.h, &s.v);
            assert_eq!(out[&g.external_outputs[c]], expect, "channel {c}");
        }
    }
}
