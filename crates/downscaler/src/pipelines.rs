//! One-call builders for each compilation route of the study.

use crate::frames::FrameGenerator;
use crate::sac_src::{program_src, Part, Variant};
use crate::scenario::Scenario;
use gaspard::codegen::{generate_opencl, OpenClProgram};
use gaspard::exec::run_opencl_frames;
#[allow(deprecated)] // kept as the parity baseline for the plan-level pass
use gaspard::fusion::{generate_opencl_fused, FusionReport};
use gaspard::transform::{deploy, schedule, ScheduledModel};
use gaspard::Platform;
use mdarray::NdArray;
use sac_cuda::codegen::{compile_flat_program, CudaProgram};
use sac_cuda::exec::run_frames_pipelined;
use sac_lang::opt::{optimize, ArgDesc, OptConfig, OptReport};
use sac_lang::wir::FlatProgram;

pub use simgpu::schedule::ExecOptions;

/// Errors from route construction.
#[derive(Debug)]
pub enum PipelineError {
    /// SaC front end / optimiser failure.
    Sac(sac_lang::SacError),
    /// CUDA backend failure.
    Cuda(sac_cuda::CudaError),
    /// MDE chain failure.
    Gaspard(gaspard::GaspardError),
    /// Invalid batch configuration, rejected before reaching an executor.
    Config(String),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Sac(e) => write!(f, "sac: {e}"),
            PipelineError::Cuda(e) => write!(f, "cuda backend: {e}"),
            PipelineError::Gaspard(e) => write!(f, "gaspard: {e}"),
            PipelineError::Config(msg) => write!(f, "bad batch options: {msg}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<sac_lang::SacError> for PipelineError {
    fn from(e: sac_lang::SacError) -> Self {
        PipelineError::Sac(e)
    }
}
impl From<sac_cuda::CudaError> for PipelineError {
    fn from(e: sac_cuda::CudaError) -> Self {
        PipelineError::Cuda(e)
    }
}
impl From<gaspard::GaspardError> for PipelineError {
    fn from(e: gaspard::GaspardError) -> Self {
        PipelineError::Gaspard(e)
    }
}

/// A compiled SaC route: source, optimised flat program, and CUDA plan.
#[derive(Debug, Clone)]
pub struct SacRoute {
    /// The SaC source text.
    pub src: String,
    /// The optimised flat program (used directly for SAC-Seq runs).
    pub flat: FlatProgram,
    /// Optimiser statistics (fold counts, kernel counts).
    pub report: OptReport,
    /// The compiled CUDA program (kernels + transfer plan).
    pub cuda: CudaProgram,
}

/// Compile the SaC route for a scenario/variant/part.
pub fn build_sac(
    s: &Scenario,
    variant: Variant,
    part: Part,
    cfg: &OptConfig,
) -> Result<SacRoute, PipelineError> {
    let src = program_src(s, variant, part);
    let prog = sac_lang::parse_program(&src)?;
    let in_shape = match part {
        Part::Vertical => vec![s.channels, s.rows, s.h_out_cols()],
        _ => vec![s.channels, s.rows, s.cols],
    };
    let args = [ArgDesc::Array { name: "frame".into(), shape: in_shape }];
    let (flat, report) = optimize(&prog, "main", &args, cfg)?;
    let cuda = compile_flat_program(&flat)?;
    Ok(SacRoute { src, flat, report, cuda })
}

/// A compiled GASPARD2 route: scheduled model and generated OpenCL.
#[derive(Debug, Clone)]
pub struct GaspardRoute {
    /// The flattened, scheduled model (pre-fusion).
    pub scheduled: ScheduledModel,
    /// The generated OpenCL program.
    pub opencl: OpenClProgram,
    /// What the fusion pass did, if it ran (empty for the faithful route).
    pub fusion: FusionReport,
}

/// Run the full MDE chain for a scenario — the paper-faithful route: no
/// fusion, one kernel per elementary task.
pub fn build_gaspard(s: &Scenario) -> Result<GaspardRoute, PipelineError> {
    let (model, alloc) = crate::model::downscaler_model(s);
    let deployed = deploy(model, Platform::cpu_gpu(), alloc)?;
    let scheduled = schedule(&deployed)?;
    let opencl = generate_opencl(&scheduled)?;
    Ok(GaspardRoute { scheduled, opencl, fusion: FusionReport::default() })
}

/// Run the MDE chain with the tiler-composition fusion pass: per-channel
/// H-filter→V-filter pipelines merge into single kernels, skipping the
/// intermediate device arrays.
pub fn build_gaspard_fused(s: &Scenario) -> Result<GaspardRoute, PipelineError> {
    let (model, alloc) = crate::model::downscaler_model(s);
    let deployed = deploy(model, Platform::cpu_gpu(), alloc)?;
    let scheduled = schedule(&deployed)?;
    #[allow(deprecated)]
    let (opencl, fusion) = generate_opencl_fused(&scheduled)?;
    Ok(GaspardRoute { scheduled, opencl, fusion })
}

/// Frames executed functionally for a scenario under `opts`: the remaining
/// frames are timing-replayed from the first frame's measured schedule.
fn executed_frames(opts: &ExecOptions, s: &Scenario) -> usize {
    if opts.executed == 0 {
        s.frames
    } else {
        opts.executed.min(s.frames)
    }
}

/// Drive the whole scenario (all `s.frames` frames) through the SaC→CUDA
/// route's stream pipeline. Returns the functionally executed frames'
/// results; `device.now_us()` afterwards is the batch makespan.
pub fn run_sac_batch(
    s: &Scenario,
    route: &SacRoute,
    device: &mut simgpu::Device,
    seed: u64,
    opts: ExecOptions,
) -> Result<Vec<NdArray<i64>>, PipelineError> {
    opts.validate().map_err(PipelineError::Config)?;
    device.set_pool_enabled(opts.pool);
    let gen = FrameGenerator::new(s.channels, s.rows, s.cols, seed);
    let frames: Vec<Vec<NdArray<i64>>> =
        (0..executed_frames(&opts, s)).map(|f| vec![gen.frame_rank3(f)]).collect();
    // The scenario decides frame chunking and batch length; everything else
    // (streams, host cost, pool, degradation) flows through from the caller.
    let (outs, _) = run_frames_pipelined(
        &route.cuda,
        device,
        &frames,
        ExecOptions { channel_chunks: s.channels, total_frames: s.frames, ..opts },
    )?;
    Ok(outs)
}

/// Drive the whole scenario through the GASPARD→OpenCL route's command-queue
/// pipeline. Returns per-frame channel planes for the functionally executed
/// frames; `device.now_us()` afterwards is the batch makespan.
pub fn run_gaspard_batch(
    s: &Scenario,
    route: &GaspardRoute,
    device: &mut simgpu::Device,
    seed: u64,
    opts: ExecOptions,
) -> Result<Vec<Vec<NdArray<i64>>>, PipelineError> {
    opts.validate().map_err(PipelineError::Config)?;
    device.set_pool_enabled(opts.pool);
    let gen = FrameGenerator::new(s.channels, s.rows, s.cols, seed);
    let frames: Vec<Vec<NdArray<i64>>> =
        (0..executed_frames(&opts, s)).map(|f| gen.frame_channels(f)).collect();
    let outs = run_opencl_frames(
        &route.opencl,
        device,
        &frames,
        ExecOptions { total_frames: s.frames, ..opts },
    )?;
    Ok(outs)
}

/// [`run_gaspard_batch`] with an explicit intermediate placement; also
/// returns the run's transfer counters (including bytes moved), which the
/// planopt ablation reports. [`gaspard::Placement::PerKernelRoundTrip`] is
/// the maximally redundant baseline — with `opts.optimize` enabling the
/// residency and dead-transfer passes, the executed schedule collapses back
/// to the device-resident placement.
pub fn run_gaspard_batch_placed(
    s: &Scenario,
    route: &GaspardRoute,
    device: &mut simgpu::Device,
    seed: u64,
    opts: ExecOptions,
    placement: gaspard::Placement,
) -> Result<simgpu::schedule::BatchOutput, PipelineError> {
    opts.validate().map_err(PipelineError::Config)?;
    device.set_pool_enabled(opts.pool);
    let gen = FrameGenerator::new(s.channels, s.rows, s.cols, seed);
    let frames: Vec<Vec<NdArray<i64>>> =
        (0..executed_frames(&opts, s)).map(|f| gen.frame_channels(f)).collect();
    let out = gaspard::run_opencl_frames_placed(
        &route.opencl,
        device,
        &frames,
        ExecOptions { total_frames: s.frames, ..opts },
        placement,
    )?;
    Ok(out)
}

/// Golden-model downscale of a rank-3 `[channels, rows, cols]` frame.
pub fn reference_downscale(s: &Scenario, frame: &NdArray<i64>) -> NdArray<i64> {
    let planes: Vec<NdArray<i64>> = FrameGenerator::unstack(frame)
        .iter()
        .map(|ch| crate::filter::downscale_channel(ch, &s.h, &s.v))
        .collect();
    FrameGenerator::stack(&planes)
}

/// Golden-model horizontal filter of a rank-3 frame.
pub fn reference_horizontal(s: &Scenario, frame: &NdArray<i64>) -> NdArray<i64> {
    let planes: Vec<NdArray<i64>> = FrameGenerator::unstack(frame)
        .iter()
        .map(|ch| crate::filter::horizontal_filter(ch, &s.h))
        .collect();
    FrameGenerator::stack(&planes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sac_cuda::exec::{run_on_device, HostCost};
    use simgpu::device::Device;

    #[test]
    fn nongeneric_route_reproduces_paper_kernel_counts() {
        // "the final fused WITH-loop for horizontal filter after applying WLF
        // has 5 generators (the vertical filter has 7 generators)" — §VIII.C.
        let s = Scenario::tiny();
        let h =
            build_sac(&s, Variant::NonGeneric, Part::Horizontal, &OptConfig::default()).unwrap();
        assert_eq!(h.report.generators_after_split, 5, "horizontal: {}", h.flat);
        assert_eq!(h.report.host_steps, 0);

        let v = build_sac(&s, Variant::NonGeneric, Part::Vertical, &OptConfig::default()).unwrap();
        assert_eq!(v.report.generators_after_split, 7, "vertical: {}", v.flat);

        let full = build_sac(&s, Variant::NonGeneric, Part::Full, &OptConfig::default()).unwrap();
        assert_eq!(full.report.generators_after_split, 12, "full: {}", full.flat);
        assert_eq!(full.cuda.launches_per_run(), 12);
    }

    #[test]
    fn generic_route_keeps_host_steps() {
        let s = Scenario::tiny();
        let g = build_sac(&s, Variant::Generic, Part::Full, &OptConfig::default()).unwrap();
        assert_eq!(g.report.host_steps, 2, "{}", g.flat);
        assert!(g.cuda.host_steps_per_run() == 2);
        // The host fallback forces device-to-host downloads mid-pipeline.
        let downloads =
            g.cuda.plan.iter().filter(|op| matches!(op, sac_cuda::PlanOp::Download { .. })).count();
        assert!(downloads >= 2, "{:?}", g.cuda.plan);
    }

    #[test]
    fn sac_cuda_routes_match_reference() {
        let s = Scenario::tiny();
        let gen = FrameGenerator::new(s.channels, s.rows, s.cols, 99);
        let frame = gen.frame_rank3(0);
        let expect = reference_downscale(&s, &frame);
        for variant in [Variant::Generic, Variant::NonGeneric] {
            let route = build_sac(&s, variant, Part::Full, &OptConfig::default()).unwrap();
            let mut device = Device::gtx480();
            let (got, _) = run_on_device(
                &route.cuda,
                &mut device,
                std::slice::from_ref(&frame),
                HostCost::default(),
            )
            .unwrap();
            assert_eq!(got, expect, "variant {variant:?}");
        }
    }

    #[test]
    fn sac_seq_flat_programs_match_reference() {
        let s = Scenario::tiny();
        let gen = FrameGenerator::new(s.channels, s.rows, s.cols, 7);
        let frame = gen.frame_rank3(1);
        let expect = reference_downscale(&s, &frame);
        for variant in [Variant::Generic, Variant::NonGeneric] {
            let route = build_sac(&s, variant, Part::Full, &OptConfig::default()).unwrap();
            let mut ops = 0;
            let got = route.flat.run(std::slice::from_ref(&frame), &mut ops).unwrap();
            assert_eq!(got, expect, "variant {variant:?}");
            assert!(ops > 0);
        }
    }

    #[test]
    fn gaspard_route_matches_reference() {
        let s = Scenario::tiny();
        let route = build_gaspard(&s).unwrap();
        assert_eq!(route.opencl.kernels.len(), 6);

        let gen = FrameGenerator::new(s.channels, s.rows, s.cols, 123);
        let channels = gen.frame_channels(0);
        let mut device = Device::gtx480();
        let outs = gaspard::run_opencl(&route.opencl, &mut device, &channels).unwrap();
        for (c, ch) in channels.iter().enumerate() {
            let expect = crate::filter::downscale_channel(ch, &s.h, &s.v);
            assert_eq!(outs[c], expect, "channel {c}");
        }
    }

    #[test]
    fn fused_gaspard_route_matches_reference_with_fewer_kernels() {
        let s = Scenario::tiny();
        let unfused = build_gaspard(&s).unwrap();
        let fused = build_gaspard_fused(&s).unwrap();
        // One fused kernel per channel instead of an H/V pair.
        assert_eq!(unfused.opencl.kernels.len(), 2 * s.channels);
        assert_eq!(fused.opencl.kernels.len(), s.channels, "{:?}", fused.fusion.refused);
        assert_eq!(fused.fusion.fused.len(), s.channels);
        assert!(fused.fusion.refused.is_empty(), "{:?}", fused.fusion.refused);
        // The intermediate per-channel arrays are gone from the fused model.
        assert_eq!(fused.opencl.model.arrays.len(), unfused.opencl.model.arrays.len() - s.channels);

        let gen = FrameGenerator::new(s.channels, s.rows, s.cols, 321);
        let channels = gen.frame_channels(0);
        let mut device = Device::gtx480();
        let outs = gaspard::run_opencl(&fused.opencl, &mut device, &channels).unwrap();
        for (c, ch) in channels.iter().enumerate() {
            let expect = crate::filter::downscale_channel(ch, &s.h, &s.v);
            assert_eq!(outs[c], expect, "channel {c}");
        }
    }

    #[test]
    fn batch_runners_match_reference_and_overlap() {
        let s = Scenario::tiny(); // 2 frames
        let seed = 77;
        let gen = FrameGenerator::new(s.channels, s.rows, s.cols, seed);

        let sac = build_sac(&s, Variant::NonGeneric, Part::Full, &OptConfig::default()).unwrap();
        let gasp = build_gaspard(&s).unwrap();

        let mut sac_sync = Device::gtx480();
        let sync_outs =
            run_sac_batch(&s, &sac, &mut sac_sync, seed, ExecOptions::default()).unwrap();
        let mut sac_db = Device::gtx480();
        let db_outs = run_sac_batch(
            &s,
            &sac,
            &mut sac_db,
            seed,
            ExecOptions { streams: 2, ..Default::default() },
        )
        .unwrap();
        for (f, out) in db_outs.iter().enumerate() {
            assert_eq!(out, &reference_downscale(&s, &gen.frame_rank3(f)), "frame {f}");
        }
        assert_eq!(db_outs, sync_outs);
        assert!(sac_db.now_us() < sac_sync.now_us());

        let mut g_sync = Device::gtx480();
        let g_sync_outs =
            run_gaspard_batch(&s, &gasp, &mut g_sync, seed, ExecOptions::default()).unwrap();
        let mut g_db = Device::gtx480();
        let g_db_outs = run_gaspard_batch(
            &s,
            &gasp,
            &mut g_db,
            seed,
            ExecOptions { streams: 2, ..Default::default() },
        )
        .unwrap();
        assert_eq!(g_db_outs, g_sync_outs);
        assert!(g_db.now_us() < g_sync.now_us());
    }

    #[test]
    fn zero_streams_is_a_typed_config_error() {
        let s = Scenario::tiny();
        let sac = build_sac(&s, Variant::NonGeneric, Part::Full, &OptConfig::default()).unwrap();
        let gasp = build_gaspard(&s).unwrap();
        let bad = ExecOptions { streams: 0, ..Default::default() };

        let mut d = Device::gtx480();
        let err = run_sac_batch(&s, &sac, &mut d, 1, bad);
        assert!(matches!(err, Err(PipelineError::Config(_))), "{err:?}");
        let err = run_gaspard_batch(&s, &gasp, &mut d, 1, bad);
        assert!(matches!(err, Err(PipelineError::Config(_))), "{err:?}");
        // Rejected before anything touched the device.
        assert_eq!(d.now_us(), 0.0);
        assert_eq!(d.profiler.records().count(), 0);
    }

    #[test]
    fn pooled_batch_matches_naive_results() {
        // Pooling changes allocator behaviour, never results or (at the
        // default zero-allocation-cost calibration) timing.
        let s = Scenario::tiny();
        let seed = 5;
        let sac = build_sac(&s, Variant::NonGeneric, Part::Full, &OptConfig::default()).unwrap();

        let mut naive = Device::gtx480();
        let naive_outs = run_sac_batch(&s, &sac, &mut naive, seed, ExecOptions::default()).unwrap();
        let mut pooled = Device::gtx480();
        let pooled_outs = run_sac_batch(
            &s,
            &sac,
            &mut pooled,
            seed,
            ExecOptions { pool: true, ..Default::default() },
        )
        .unwrap();

        assert_eq!(pooled_outs, naive_outs);
        assert_eq!(pooled.now_us(), naive.now_us());
        // The batch's end-of-run frees were cached, not returned.
        assert_eq!(pooled.allocated_bytes(), 0);
        assert!(pooled.pool().cached_bytes() > 0);
        assert_eq!(naive.pool().cached_bytes(), 0);
    }

    #[test]
    fn both_routes_agree_bit_exactly() {
        // The cross-route check the paper's comparison implies: same frames,
        // same downscaled video.
        let s = Scenario::tiny();
        let gen = FrameGenerator::new(s.channels, s.rows, s.cols, 2024);
        let frame_planes = gen.frame_channels(0);
        let frame3 = FrameGenerator::stack(&frame_planes);

        let sac = build_sac(&s, Variant::NonGeneric, Part::Full, &OptConfig::default()).unwrap();
        let mut dev1 = Device::gtx480();
        let (sac_out, _) =
            run_on_device(&sac.cuda, &mut dev1, &[frame3], HostCost::default()).unwrap();

        let gasp = build_gaspard(&s).unwrap();
        let mut dev2 = Device::gtx480();
        let gasp_out = gaspard::run_opencl(&gasp.opencl, &mut dev2, &frame_planes).unwrap();
        let gasp_stacked = FrameGenerator::stack(&gasp_out);
        assert_eq!(sac_out, gasp_stacked);
    }
}
