//! The downscaler's SaC sources (the paper's Figures 4–7), generated for a
//! given [`Scenario`].
//!
//! Two variants exist, differing **only** in the output tiler — exactly the
//! experiment of §VI/§VIII.A:
//!
//! * **generic** — `input_tiler` (Figure 4), the task functions (Figure 5)
//!   and `generic_output_tiler` (Figure 6): fully reusable functions whose
//!   tiler parameters (`origin`, `fitting`, `paving`) are passed as data.
//!   The output tiler is a `for` nest, which the compiler cannot
//!   parallelise — it stays on the host and forces a mid-pipeline
//!   device-to-host transfer,
//! * **non-generic** — the same input tiler and task, but the output tiler
//!   of Figure 7: a multi-generator WITH-loop with baked-in tile size, which
//!   WITH-loop folding fuses with the rest of the filter.
//!
//! The frames carry all colour channels as one `int[3,R,C]` array, so a
//! filter is a single (rank-3) WITH-loop pipeline and the folded result
//! launches the paper's 5 (horizontal) / 7 (vertical) kernels per frame.

use crate::filter::FilterSpec;
use crate::scenario::Scenario;

/// Which slice of the application a `main` should cover.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Part {
    /// Horizontal filter only: `frame -> hf`.
    Horizontal,
    /// Vertical filter only: `hf -> vf`.
    Vertical,
    /// The whole downscaler: `frame -> vf`.
    Full,
}

/// Which programming style.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Figures 4–6: generic tilers, host-bound output scatter.
    Generic,
    /// Figure 7: WITH-loop output tiler, fully foldable.
    NonGeneric,
}

/// Render `[a,b,c]`.
fn vec_lit(v: &[i64]) -> String {
    format!("[{}]", v.iter().map(|x| x.to_string()).collect::<Vec<_>>().join(","))
}

/// Render `[[..],[..]]`.
fn mat_lit(m: &[Vec<i64>]) -> String {
    format!("[{}]", m.iter().map(|r| vec_lit(r)).collect::<Vec<_>>().join(","))
}

/// Tiler data for one filter in the rank-3 `[channel, row, col]` layout.
struct Tilers {
    in_pattern: usize,
    in_origin: Vec<i64>,
    in_fitting: Vec<Vec<i64>>,
    in_paving: Vec<Vec<i64>>,
    repetition: Vec<i64>,
    out_pattern: usize,
    out_origin: Vec<i64>,
    out_fitting: Vec<Vec<i64>>,
    out_paving: Vec<Vec<i64>>,
}

/// `dim`: 1 = vertical (rows), 2 = horizontal (cols).
fn tilers(s: &Scenario, spec: &FilterSpec, dim: usize, tiles: usize, other: usize) -> Tilers {
    let unit = |d: usize| {
        let mut col = vec![vec![0i64], vec![0], vec![0]];
        col[d] = vec![1];
        col
    };
    let mut in_origin = vec![0i64, 0, 0];
    in_origin[dim] = spec.origin;
    let mut in_paving = vec![vec![1i64, 0, 0], vec![0, 1, 0], vec![0, 0, 1]];
    in_paving[dim][dim] = spec.step as i64;
    let mut out_paving = vec![vec![1i64, 0, 0], vec![0, 1, 0], vec![0, 0, 1]];
    out_paving[dim][dim] = spec.outputs_per_tile() as i64;
    let repetition = if dim == 2 {
        vec![s.channels as i64, other as i64, tiles as i64]
    } else {
        vec![s.channels as i64, tiles as i64, other as i64]
    };
    Tilers {
        in_pattern: spec.pattern,
        in_origin,
        in_fitting: unit(dim),
        in_paving,
        repetition,
        out_pattern: spec.outputs_per_tile(),
        out_origin: vec![0, 0, 0],
        out_fitting: unit(dim),
        out_paving,
    }
}

fn h_tilers(s: &Scenario) -> Tilers {
    tilers(s, &s.h, 2, s.h_tiles(), s.rows)
}

fn v_tilers(s: &Scenario) -> Tilers {
    tilers(s, &s.v, 1, s.v_tiles(), s.h_out_cols())
}

/// Figure 4: the generic input tiler, verbatim (rank-polymorphic).
pub fn input_tiler_src() -> String {
    r#"
int[*] input_tiler(int[*] in_frame, int[.] in_pattern,
                   int[.] repetition, int[.] origin,
                   int[.,.] fitting, int[.,.] paving)
{
    output = with {
        (. <= rep <= .) {
            tile = with {
                (. <= pat <= .) {
                    off = origin + MV( CAT( paving, fitting) , rep ++ pat);
                    iv = off % shape(in_frame);
                    elem = in_frame[iv];
                } : elem;
            } : genarray( in_pattern, 0);
        } : tile;
    } : genarray( repetition);
    return( output);
}
"#
    .to_string()
}

/// Figure 5: the task function — window sums over gathered tiles.
pub fn task_src(name: &str, spec: &FilterSpec) -> String {
    let mut body = String::new();
    for (k, &w) in spec.windows.iter().enumerate() {
        let terms: Vec<String> =
            (0..spec.window_len).map(|p| format!("input[rep][{}]", w + p)).collect();
        body.push_str(&format!("            tmp{k} = {};\n", terms.join(" + ")));
        body.push_str(&format!(
            "            tile[{k}] = tmp{k} / {d} - tmp{k} % {d};\n",
            d = spec.divisor
        ));
    }
    format!(
        r#"
int[*] {name}(int[*] input, int[.] out_pattern, int[.] repetition)
{{
    output = with {{
        (. <= rep <= .) {{
            tile = genarray( out_pattern, 0);
{body}        }} : tile;
    }} : genarray( repetition);
    return( output);
}}
"#
    )
}

/// Figure 6: the generic output tiler — a `for` nest over the repetition
/// space and output pattern, scattering through the tiler formulae.
pub fn generic_output_tiler_src() -> String {
    r#"
int[*] generic_output_tiler(int[*] out_frame, int[*] input,
                            int[.] out_pattern, int[.] repetition,
                            int[.] origin, int[.,.] fitting, int[.,.] paving)
{
    for( c=0; c< repetition[[0]]; c++) {
        for( i=0; i< repetition[[1]]; i++) {
            for( j=0; j< repetition[[2]]; j++) {
                for( k=0; k< out_pattern[[0]]; k++) {
                    off = origin + MV( CAT( paving, fitting), [c,i,j] ++ [k]);
                    iv = off % shape(out_frame);
                    out_frame[iv] = input[[c,i,j,k]];
                }
            }
        }
    }
    return( out_frame);
}
"#
    .to_string()
}

/// Figure 7: the non-generic output tiler — one WITH-loop generator per
/// output-tile position, tile size baked into steps and indices.
pub fn nongeneric_output_tiler_src(name: &str, spec: &FilterSpec, dim: usize) -> String {
    let k = spec.outputs_per_tile() as i64;
    let mut gens = String::new();
    for pos in 0..k {
        let mut lower = vec![0i64, 0, 0];
        lower[dim] = pos;
        let mut step = vec![1i64, 1, 1];
        step[dim] = k;
        let index = match dim {
            1 => format!("[[c, i/{k}, j, {pos}]]"),
            2 => format!("[[c, i, j/{k}, {pos}]]"),
            _ => unreachable!("filters act on rows or columns"),
        };
        gens.push_str(&format!(
            "        ({} <= [c,i,j] <= . step {}) : input{};\n",
            vec_lit(&lower),
            vec_lit(&step),
            index
        ));
    }
    format!(
        r#"
int[*] {name}(int[*] output, int[*] input)
{{
    output = with {{
{gens}    }} : modarray( output);
    return( output);
}}
"#
    )
}

/// A `main` for the requested part/variant.
fn main_src(s: &Scenario, variant: Variant, part: Part) -> String {
    let c = s.channels;
    let (r, cc) = (s.rows, s.cols);
    let h_out = s.h_out_cols();
    let v_out = s.v_out_rows();
    let ht = h_tilers(s);
    let vt = v_tilers(s);

    let h_stage = |input: &str| -> String {
        let mut out = format!(
            "    hin = input_tiler({input}, [{}], {}, {}, {}, {});\n",
            ht.in_pattern,
            vec_lit(&ht.repetition),
            vec_lit(&ht.in_origin),
            mat_lit(&ht.in_fitting),
            mat_lit(&ht.in_paving),
        );
        out.push_str(&format!(
            "    htiles = htask(hin, [{}], {});\n",
            ht.out_pattern,
            vec_lit(&ht.repetition)
        ));
        match variant {
            Variant::Generic => {
                out.push_str(&format!("    hzero = genarray( [{c},{r},{h_out}], 0);\n"));
                out.push_str(&format!(
                    "    hf = generic_output_tiler(hzero, htiles, [{}], {}, {}, {}, {});\n",
                    ht.out_pattern,
                    vec_lit(&ht.repetition),
                    vec_lit(&ht.out_origin),
                    mat_lit(&ht.out_fitting),
                    mat_lit(&ht.out_paving),
                ));
            }
            Variant::NonGeneric => {
                out.push_str(&format!(
                    "    hzero = with {{ (. <= iv <= .) : 0; }} : genarray( [{c},{r},{h_out}]);\n"
                ));
                out.push_str("    hf = nongeneric_output_tiler_h(hzero, htiles);\n");
            }
        }
        out
    };
    let v_stage = |input: &str| -> String {
        let mut out = format!(
            "    vin = input_tiler({input}, [{}], {}, {}, {}, {});\n",
            vt.in_pattern,
            vec_lit(&vt.repetition),
            vec_lit(&vt.in_origin),
            mat_lit(&vt.in_fitting),
            mat_lit(&vt.in_paving),
        );
        out.push_str(&format!(
            "    vtiles = vtask(vin, [{}], {});\n",
            vt.out_pattern,
            vec_lit(&vt.repetition)
        ));
        match variant {
            Variant::Generic => {
                out.push_str(&format!("    vzero = genarray( [{c},{v_out},{h_out}], 0);\n"));
                out.push_str(&format!(
                    "    vf = generic_output_tiler(vzero, vtiles, [{}], {}, {}, {}, {});\n",
                    vt.out_pattern,
                    vec_lit(&vt.repetition),
                    vec_lit(&vt.out_origin),
                    mat_lit(&vt.out_fitting),
                    mat_lit(&vt.out_paving),
                ));
            }
            Variant::NonGeneric => {
                out.push_str(&format!(
                    "    vzero = with {{ (. <= iv <= .) : 0; }} : genarray( [{c},{v_out},{h_out}]);\n"
                ));
                out.push_str("    vf = nongeneric_output_tiler_v(vzero, vtiles);\n");
            }
        }
        out
    };

    match part {
        Part::Horizontal => format!(
            "int[*] main(int[{c},{r},{cc}] frame)\n{{\n{}    return( hf);\n}}\n",
            h_stage("frame")
        ),
        Part::Vertical => format!(
            "int[*] main(int[{c},{r},{h_out}] hframe)\n{{\n{}    return( vf);\n}}\n",
            v_stage("hframe")
        ),
        Part::Full => format!(
            "int[*] main(int[{c},{r},{cc}] frame)\n{{\n{}{}    return( vf);\n}}\n",
            h_stage("frame"),
            v_stage("hf")
        ),
    }
}

/// Assemble the complete program text for a variant/part.
pub fn program_src(s: &Scenario, variant: Variant, part: Part) -> String {
    let mut src = String::new();
    src.push_str(&input_tiler_src());
    if part != Part::Vertical {
        src.push_str(&task_src("htask", &s.h));
    }
    if part != Part::Horizontal {
        src.push_str(&task_src("vtask", &s.v));
    }
    match variant {
        Variant::Generic => src.push_str(&generic_output_tiler_src()),
        Variant::NonGeneric => {
            if part != Part::Vertical {
                src.push_str(&nongeneric_output_tiler_src("nongeneric_output_tiler_h", &s.h, 2));
            }
            if part != Part::Horizontal {
                src.push_str(&nongeneric_output_tiler_src("nongeneric_output_tiler_v", &s.v, 1));
            }
        }
    }
    src.push_str(&main_src(s, variant, part));
    src
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdarray::NdArray;
    use sac_lang::parser::parse_program;
    use sac_lang::value::Value;
    use sac_lang::Interp;

    #[test]
    fn all_variants_parse_and_typecheck() {
        let s = Scenario::tiny();
        for variant in [Variant::Generic, Variant::NonGeneric] {
            for part in [Part::Horizontal, Part::Vertical, Part::Full] {
                let src = program_src(&s, variant, part);
                let prog = parse_program(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));
                sac_lang::types::check_program(&prog).unwrap_or_else(|e| panic!("{e}\n{src}"));
            }
        }
    }

    #[test]
    fn generic_and_nongeneric_agree_with_reference() {
        let s = Scenario::micro();
        let gen = crate::frames::FrameGenerator::new(s.channels, s.rows, s.cols, 11);
        let frame = gen.frame_rank3(0);

        // Reference result per channel.
        let expect: Vec<NdArray<i64>> = crate::frames::FrameGenerator::unstack(&frame)
            .iter()
            .map(|ch| crate::filter::downscale_channel(ch, &s.h, &s.v))
            .collect();
        let expect = crate::frames::FrameGenerator::stack(&expect);

        for variant in [Variant::Generic, Variant::NonGeneric] {
            let src = program_src(&s, variant, Part::Full);
            let prog = parse_program(&src).unwrap();
            let mut interp = Interp::new(&prog);
            let got = interp.call("main", vec![Value::Arr(frame.clone())]).unwrap();
            assert_eq!(
                got.as_array().unwrap(),
                &expect,
                "variant {variant:?} diverges from the reference filters"
            );
        }
    }

    #[test]
    fn per_filter_mains_compose_to_full() {
        let s = Scenario::micro();
        let gen = crate::frames::FrameGenerator::new(s.channels, s.rows, s.cols, 3);
        let frame = gen.frame_rank3(0);
        let run = |part: Part, arg: &NdArray<i64>| -> NdArray<i64> {
            let src = program_src(&s, Variant::NonGeneric, part);
            let prog = parse_program(&src).unwrap();
            let mut interp = Interp::new(&prog);
            interp.call("main", vec![Value::Arr(arg.clone())]).unwrap().as_array().unwrap().clone()
        };
        let hf = run(Part::Horizontal, &frame);
        let vf = run(Part::Vertical, &hf);
        let full = run(Part::Full, &frame);
        assert_eq!(vf, full);
    }

    #[test]
    fn figure_sources_contain_paper_constructs() {
        let s = Scenario::hd1080();
        let src = program_src(&s, Variant::NonGeneric, Part::Full);
        // Figure 4's tiler formula.
        assert!(src.contains("MV( CAT( paving, fitting) , rep ++ pat)"), "{src}");
        // Figure 5's interpolation.
        assert!(src.contains("tmp0 / 6 - tmp0 % 6"), "{src}");
        // Figure 7's stepped generators.
        assert!(src.contains("step [1,1,3]) : input[[c, i, j/3, 0]]"), "{src}");
        // Rank-3 HD shapes.
        assert!(src.contains("int[3,1080,1920] frame"), "{src}");

        let gsrc = program_src(&s, Variant::Generic, Part::Full);
        // Figure 6's scatter nest.
        assert!(gsrc.contains("for( k=0; k< out_pattern[[0]]; k++)"), "{gsrc}");
        assert!(gsrc.contains("out_frame[iv] = input[[c,i,j,k]]"), "{gsrc}");
    }
}

#[cfg(test)]
mod pretty_roundtrip_tests {
    use super::*;
    use sac_lang::parser::parse_program;
    use sac_lang::pretty::print_program;
    use sac_lang::value::Value;
    use sac_lang::Interp;

    /// The printer round-trips the real generated downscaler sources not just
    /// structurally but semantically.
    #[test]
    fn printed_downscaler_is_semantics_preserving() {
        let s = Scenario::micro();
        let frame =
            crate::frames::FrameGenerator::new(s.channels, s.rows, s.cols, 4).frame_rank3(0);
        for variant in [Variant::Generic, Variant::NonGeneric] {
            let src = program_src(&s, variant, Part::Full);
            let p1 = parse_program(&src).unwrap();
            let printed = print_program(&p1);
            let p2 =
                parse_program(&printed).unwrap_or_else(|e| panic!("{variant:?}: {e}\n{printed}"));
            assert_eq!(p1, p2, "{variant:?} AST changed through print/parse");

            let mut i1 = Interp::new(&p1);
            let mut i2 = Interp::new(&p2);
            let v1 = i1.call("main", vec![Value::Arr(frame.clone())]).unwrap();
            let v2 = i2.call("main", vec![Value::Arr(frame.clone())]).unwrap();
            assert_eq!(v1, v2, "{variant:?} results diverge");
        }
    }
}
