//! Abstract syntax for the SaC subset.

/// Shape-class type annotations (`int`, `int[.]`, `int[.,.]`, `int[*]`,
/// `int[1080,1920]`). SaC's shape classes: AKS (known shape), AKD (known
/// rank/dimensionality), AUD (unknown rank).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeAnn {
    /// Scalar `int`.
    Int,
    /// `int[*]` — any rank (AUD).
    ArrAnyRank,
    /// `int[.]`, `int[.,.]`, … — known rank, unknown shape (AKD).
    ArrRank(usize),
    /// `int[1080,1920]` — fully known shape (AKS).
    ArrShape(Vec<usize>),
}

/// Binary operators. `%` is Euclidean modulo (dialect note in the crate docs);
/// `++` concatenates vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinKind {
    /// `+` (elementwise on arrays, broadcasting scalars).
    Add,
    /// `-`.
    Sub,
    /// `*`.
    Mul,
    /// `/` (truncating toward zero, as in C).
    Div,
    /// `%` (Euclidean: result in `[0, |rhs|)` for positive rhs).
    Mod,
    /// `++` vector concatenation.
    Concat,
    /// `<` (scalar, 0/1).
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `==`.
    Eq,
    /// `!=`.
    Ne,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Variable reference.
    Var(String),
    /// Vector literal `[a, b, c]` (or matrix literal `[[..],[..]]`).
    VecLit(Vec<Expr>),
    /// Binary operation.
    Bin(BinKind, Box<Expr>, Box<Expr>),
    /// Unary negation.
    Neg(Box<Expr>),
    /// Function or builtin call (`MV`, `CAT`, `shape`, `dim`, user functions).
    Call(String, Vec<Expr>),
    /// Array selection `a[e]`. `e` may be a scalar (select along the first
    /// axis) or an index vector; a full-rank vector selects an element, a
    /// shorter one a sub-array. `a[[i,j]]` parses to this with a vector
    /// literal index.
    Select(Box<Expr>, Box<Expr>),
    /// A WITH-loop.
    With(Box<WithLoop>),
    /// Statement block with a result value. Not part of the surface syntax —
    /// produced by the function inliner.
    Block(Vec<Stmt>, Box<Expr>),
}

/// Left-hand sides of assignments.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// `x = …`.
    Var(String),
    /// `x[e] = …` (element or sub-array update; SaC's `modarray` sugar).
    Index(String, Expr),
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Assignment.
    Assign(LValue, Expr),
    /// `for (v = init; v < limit; v++) { body }` — the only loop form the
    /// paper's code uses (the generic output tiler's scatter nest).
    For {
        /// Loop variable.
        var: String,
        /// Initial value.
        init: Expr,
        /// Exclusive upper bound.
        limit: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `return (e);`
    Return(Expr),
}

/// The index variable of a generator: `iv` or destructured `[i, j]`.
#[derive(Debug, Clone, PartialEq)]
pub enum GenVar {
    /// A single name bound to the full index vector.
    Name(String),
    /// Component names, each bound to a scalar.
    Components(Vec<String>),
}

impl GenVar {
    /// Rank implied by a component binding, if destructured.
    pub fn rank(&self) -> Option<usize> {
        match self {
            GenVar::Name(_) => None,
            GenVar::Components(cs) => Some(cs.len()),
        }
    }
}

/// One generator of a WITH-loop: an index range plus the expression evaluated
/// at each index.
#[derive(Debug, Clone, PartialEq)]
pub struct Generator {
    /// Lower bound (inclusive); `None` is the `.` "whole range" marker.
    pub lower: Option<Expr>,
    /// Upper bound; `None` is `.`.
    pub upper: Option<Expr>,
    /// Whether the written upper bound was `<=` (inclusive).
    pub upper_inclusive: bool,
    /// Optional `step` filter.
    pub step: Option<Expr>,
    /// Optional `width` filter (requires `step`).
    pub width: Option<Expr>,
    /// The bound index variable(s).
    pub var: GenVar,
    /// Local bindings evaluated per index.
    pub body: Vec<Stmt>,
    /// The cell value.
    pub yield_expr: Expr,
}

/// The operation part of a WITH-loop.
#[derive(Debug, Clone, PartialEq)]
pub enum WithOp {
    /// `genarray(shape)` / `genarray(shape, default)`: build a new array.
    Genarray {
        /// The frame shape of the result.
        shape: Expr,
        /// Default cell value for uncovered indices (0 when omitted).
        default: Option<Expr>,
    },
    /// `modarray(a)`: copy `a`, overwrite covered cells.
    Modarray(Expr),
    /// `fold(fun, neutral)`: reduce every generator cell with a binary
    /// builtin (`+`, `*`, `min`, `max`), starting from the neutral element —
    /// SaC's third WITH-loop operation. Not used by the paper's figures, so
    /// the CUDA backend declines it (host fallback), but the language level
    /// supports it.
    Fold {
        /// The combining builtin: `"+"`, `"*"`, `"min"` or `"max"`.
        fun: String,
        /// The neutral element expression.
        neutral: Expr,
    },
}

/// A WITH-loop: one or more generators and an operation.
#[derive(Debug, Clone, PartialEq)]
pub struct WithLoop {
    /// The generators, in source order. Later generators win overlaps.
    pub generators: Vec<Generator>,
    /// `genarray` / `modarray`.
    pub op: WithOp,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FunDef {
    /// Function name.
    pub name: String,
    /// Return type annotation.
    pub ret: TypeAnn,
    /// Parameters: annotation + name.
    pub params: Vec<(TypeAnn, String)>,
    /// Body statements; must end in (or reach) a `return`.
    pub body: Vec<Stmt>,
}

/// A whole program: a set of functions.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Functions in declaration order.
    pub funs: Vec<FunDef>,
}

impl Program {
    /// Find a function by name.
    pub fn fun(&self, name: &str) -> Option<&FunDef> {
        self.funs.iter().find(|f| f.name == name)
    }
}

impl std::fmt::Display for TypeAnn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TypeAnn::Int => write!(f, "int"),
            TypeAnn::ArrAnyRank => write!(f, "int[*]"),
            TypeAnn::ArrRank(r) => {
                write!(f, "int[")?;
                for i in 0..*r {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, ".")?;
                }
                write!(f, "]")
            }
            TypeAnn::ArrShape(dims) => {
                write!(f, "int[")?;
                for (i, d) in dims.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{d}")?;
                }
                write!(f, "]")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_annotations_display_like_sac() {
        assert_eq!(TypeAnn::Int.to_string(), "int");
        assert_eq!(TypeAnn::ArrAnyRank.to_string(), "int[*]");
        assert_eq!(TypeAnn::ArrRank(2).to_string(), "int[.,.]");
        assert_eq!(TypeAnn::ArrShape(vec![1080, 1920]).to_string(), "int[1080,1920]");
    }

    #[test]
    fn genvar_rank() {
        assert_eq!(GenVar::Name("iv".into()).rank(), None);
        assert_eq!(GenVar::Components(vec!["i".into(), "j".into()]).rank(), Some(2));
    }

    #[test]
    fn program_lookup() {
        let p = Program {
            funs: vec![FunDef {
                name: "main".into(),
                ret: TypeAnn::Int,
                params: vec![],
                body: vec![Stmt::Return(Expr::Int(0))],
            }],
        };
        assert!(p.fun("main").is_some());
        assert!(p.fun("nope").is_none());
    }
}
