//! Runtime values of the SaC interpreter.

use crate::SacError;
use mdarray::NdArray;

/// A SaC value: a scalar `int` or a multidimensional `int` array.
///
/// (Full SaC treats scalars as rank-0 arrays; we keep them separate for speed
/// and convert where needed — `shape(5)` is `[]` either way.)
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Scalar integer.
    Int(i64),
    /// Array of rank ≥ 0.
    Arr(NdArray<i64>),
}

impl Value {
    /// The value's shape vector (empty for scalars).
    pub fn shape_vec(&self) -> Vec<usize> {
        match self {
            Value::Int(_) => Vec::new(),
            Value::Arr(a) => a.shape().dims().to_vec(),
        }
    }

    /// Rank (0 for scalars).
    pub fn rank(&self) -> usize {
        match self {
            Value::Int(_) => 0,
            Value::Arr(a) => a.rank(),
        }
    }

    /// Unwrap a scalar, treating rank-0 arrays as scalars too.
    pub fn as_int(&self) -> Result<i64, SacError> {
        match self {
            Value::Int(v) => Ok(*v),
            Value::Arr(a) if a.rank() == 0 => Ok(a.as_slice()[0]),
            Value::Arr(a) => Err(SacError::Eval {
                msg: format!("expected a scalar, found array of shape {}", a.shape()),
            }),
        }
    }

    /// Unwrap a rank-1 integer vector (an index vector).
    pub fn as_ivec(&self) -> Result<Vec<i64>, SacError> {
        match self {
            Value::Arr(a) if a.rank() == 1 => Ok(a.as_slice().to_vec()),
            other => Err(SacError::Eval {
                msg: format!("expected an index vector, found rank-{} value", other.rank()),
            }),
        }
    }

    /// Unwrap a rank-1 vector of non-negative extents (a shape vector).
    pub fn as_shape(&self) -> Result<Vec<usize>, SacError> {
        let v = self.as_ivec()?;
        v.iter()
            .map(|&x| {
                usize::try_from(x).map_err(|_| SacError::Eval {
                    msg: format!("negative extent {x} in shape vector"),
                })
            })
            .collect()
    }

    /// Build a rank-1 vector value.
    pub fn from_ivec(v: Vec<i64>) -> Value {
        let n = v.len();
        Value::Arr(NdArray::from_vec([n], v).expect("length matches"))
    }

    /// Borrow the underlying array, if any.
    pub fn as_array(&self) -> Result<&NdArray<i64>, SacError> {
        match self {
            Value::Arr(a) => Ok(a),
            Value::Int(_) => Err(SacError::Eval { msg: "expected an array, found scalar".into() }),
        }
    }
}

/// Euclidean modulo: the result has the divisor's sign magnitude semantics the
/// tiler formulae need (`-1 % 1920 == 1919`).
pub fn euclid_mod(a: i64, b: i64) -> Result<i64, SacError> {
    if b == 0 {
        return Err(SacError::Eval { msg: "modulo by zero".into() });
    }
    Ok(a.rem_euclid(b))
}

/// C-style truncating division, with a zero check.
pub fn trunc_div(a: i64, b: i64) -> Result<i64, SacError> {
    if b == 0 {
        return Err(SacError::Eval { msg: "division by zero".into() });
    }
    Ok(a.wrapping_div(b))
}

/// Apply a scalar binary function elementwise with scalar↔array broadcasting.
pub fn broadcast2(
    lhs: &Value,
    rhs: &Value,
    mut f: impl FnMut(i64, i64) -> Result<i64, SacError>,
) -> Result<Value, SacError> {
    match (lhs, rhs) {
        (Value::Int(a), Value::Int(b)) => Ok(Value::Int(f(*a, *b)?)),
        (Value::Arr(a), Value::Int(b)) => {
            let mut out = Vec::with_capacity(a.len());
            for &x in a.as_slice() {
                out.push(f(x, *b)?);
            }
            Ok(Value::Arr(NdArray::from_vec(a.shape().clone(), out).expect("same length")))
        }
        (Value::Int(a), Value::Arr(b)) => {
            let mut out = Vec::with_capacity(b.len());
            for &x in b.as_slice() {
                out.push(f(*a, x)?);
            }
            Ok(Value::Arr(NdArray::from_vec(b.shape().clone(), out).expect("same length")))
        }
        (Value::Arr(a), Value::Arr(b)) => {
            if a.shape() != b.shape() {
                return Err(SacError::Eval {
                    msg: format!(
                        "shape mismatch in elementwise op: {} vs {}",
                        a.shape(),
                        b.shape()
                    ),
                });
            }
            let mut out = Vec::with_capacity(a.len());
            for (&x, &y) in a.as_slice().iter().zip(b.as_slice()) {
                out.push(f(x, y)?);
            }
            Ok(Value::Arr(NdArray::from_vec(a.shape().clone(), out).expect("same length")))
        }
    }
}

/// Select `a[index]` where `index` is a (possibly partial) index vector:
/// full rank yields the element, shorter prefixes yield sub-arrays.
/// Components wrap are *not* applied here — SaC selection is bounds-checked.
pub fn select_vec(a: &NdArray<i64>, index: &[i64]) -> Result<Value, SacError> {
    if index.len() > a.rank() {
        return Err(SacError::Eval {
            msg: format!("index rank {} exceeds array rank {}", index.len(), a.rank()),
        });
    }
    let mut ix = Vec::with_capacity(index.len());
    for (d, &x) in index.iter().enumerate() {
        let extent = a.shape().dim(d);
        if x < 0 || x as usize >= extent {
            return Err(SacError::Eval {
                msg: format!("index {x} out of bounds for extent {extent} (dim {d})"),
            });
        }
        ix.push(x as usize);
    }
    if index.len() == a.rank() {
        Ok(Value::Int(*a.get(&ix).expect("checked above")))
    } else {
        let sub = a.subarray(&ix).map_err(|e| SacError::Eval { msg: e.to_string() })?;
        Ok(Value::Arr(sub))
    }
}

/// Write `value` into `a` at a (possibly partial) index vector; scalar writes
/// hit one element, array writes replace the addressed sub-array.
pub fn assign_vec(a: &mut NdArray<i64>, index: &[i64], value: &Value) -> Result<(), SacError> {
    let mut ix = Vec::with_capacity(index.len());
    for (d, &x) in index.iter().enumerate() {
        if d >= a.rank() {
            return Err(SacError::Eval { msg: "index rank exceeds array rank".into() });
        }
        let extent = a.shape().dim(d);
        if x < 0 || x as usize >= extent {
            return Err(SacError::Eval {
                msg: format!("index {x} out of bounds for extent {extent} (dim {d})"),
            });
        }
        ix.push(x as usize);
    }
    let cell_rank = a.rank() - index.len();
    match value {
        Value::Int(v) if cell_rank == 0 => {
            a.set(&ix, *v).map_err(|e| SacError::Eval { msg: e.to_string() })
        }
        Value::Arr(cell) if cell.rank() == cell_rank => {
            let cell_dims: Vec<usize> = a.shape().dims()[index.len()..].to_vec();
            if cell.shape().dims() != cell_dims.as_slice() {
                return Err(SacError::Eval {
                    msg: format!(
                        "sub-array assignment shape mismatch: {} vs [{}]",
                        cell.shape(),
                        cell_dims.iter().map(|d| d.to_string()).collect::<Vec<_>>().join(",")
                    ),
                });
            }
            // Contiguous block write at the prefix offset.
            let mut full = ix.clone();
            full.extend(std::iter::repeat_n(0, cell_rank));
            let start =
                a.shape().offset_of(&full).map_err(|e| SacError::Eval { msg: e.to_string() })?;
            let len = cell.len();
            a.as_mut_slice()[start..start + len].copy_from_slice(cell.as_slice());
            Ok(())
        }
        _ => Err(SacError::Eval {
            msg: format!(
                "assignment rank mismatch: writing rank-{} value into rank-{} cell",
                value.rank(),
                cell_rank
            ),
        }),
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Arr(a) if a.rank() == 1 => {
                write!(f, "[")?;
                for (i, v) in a.as_slice().iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Arr(a) => write!(f, "<array {}>", a.shape()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclid_mod_wraps_negatives() {
        assert_eq!(euclid_mod(-1, 1920).unwrap(), 1919);
        assert_eq!(euclid_mod(1921, 1920).unwrap(), 1);
        assert_eq!(euclid_mod(5, 3).unwrap(), 2);
        assert!(euclid_mod(1, 0).is_err());
    }

    #[test]
    fn broadcasting_rules() {
        let v = Value::from_ivec(vec![1, 2, 3]);
        let r = broadcast2(&v, &Value::Int(10), |a, b| Ok(a * b)).unwrap();
        assert_eq!(r.as_ivec().unwrap(), vec![10, 20, 30]);
        let r = broadcast2(&Value::Int(1), &v, |a, b| Ok(a + b)).unwrap();
        assert_eq!(r.as_ivec().unwrap(), vec![2, 3, 4]);
        let w = Value::from_ivec(vec![4, 5]);
        assert!(broadcast2(&v, &w, |a, b| Ok(a + b)).is_err());
    }

    #[test]
    fn select_partial_and_full() {
        let a = NdArray::from_fn([2usize, 3], |ix| (ix[0] * 3 + ix[1]) as i64);
        assert_eq!(select_vec(&a, &[1, 2]).unwrap(), Value::Int(5));
        match select_vec(&a, &[1]).unwrap() {
            Value::Arr(sub) => assert_eq!(sub.as_slice(), &[3, 4, 5]),
            other => panic!("unexpected {other:?}"),
        }
        assert!(select_vec(&a, &[2, 0]).is_err());
        assert!(select_vec(&a, &[0, -1]).is_err());
        assert!(select_vec(&a, &[0, 0, 0]).is_err());
    }

    #[test]
    fn assign_scalar_and_subarray() {
        let mut a = NdArray::filled([2usize, 3], 0i64);
        assign_vec(&mut a, &[1, 2], &Value::Int(9)).unwrap();
        assert_eq!(*a.get(&[1, 2]).unwrap(), 9);
        let row = NdArray::from_vec([3usize], vec![7, 8, 9]).unwrap();
        assign_vec(&mut a, &[0], &Value::Arr(row)).unwrap();
        assert_eq!(a.as_slice()[..3], [7, 8, 9]);
        // Wrong cell shape.
        let bad = NdArray::from_vec([2usize], vec![1, 2]).unwrap();
        assert!(assign_vec(&mut a, &[0], &Value::Arr(bad)).is_err());
    }

    #[test]
    fn as_shape_rejects_negative() {
        assert!(Value::from_ivec(vec![2, -1]).as_shape().is_err());
        assert_eq!(Value::from_ivec(vec![2, 3]).as_shape().unwrap(), vec![2, 3]);
    }
}
