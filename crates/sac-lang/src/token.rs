//! Token definitions for the SaC subset.

/// A lexical token with its source line (1-based) for diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token proper.
    pub kind: Tok,
    /// 1-based source line.
    pub line: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Integer literal.
    Int(i64),
    /// Identifier (also used for type keywords' base like `int`).
    Ident(String),
    /// `with`
    With,
    /// `genarray`
    Genarray,
    /// `modarray`
    Modarray,
    /// `fold`
    Fold,
    /// `step`
    Step,
    /// `width`
    Width,
    /// `return`
    Return,
    /// `for`
    For,
    /// `if`
    If,
    /// `else`
    Else,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `=`
    Assign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `++` (vector concatenation; also postfix increment in `for` headers)
    PlusPlus,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `.` (the "whole range" bound inside generators)
    Dot,
    /// End of input.
    Eof,
}

impl std::fmt::Display for Tok {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Tok::Int(v) => write!(f, "{v}"),
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::With => write!(f, "with"),
            Tok::Genarray => write!(f, "genarray"),
            Tok::Modarray => write!(f, "modarray"),
            Tok::Fold => write!(f, "fold"),
            Tok::Step => write!(f, "step"),
            Tok::Width => write!(f, "width"),
            Tok::Return => write!(f, "return"),
            Tok::For => write!(f, "for"),
            Tok::If => write!(f, "if"),
            Tok::Else => write!(f, "else"),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::LBrace => write!(f, "{{"),
            Tok::RBrace => write!(f, "}}"),
            Tok::LBracket => write!(f, "["),
            Tok::RBracket => write!(f, "]"),
            Tok::Comma => write!(f, ","),
            Tok::Semi => write!(f, ";"),
            Tok::Colon => write!(f, ":"),
            Tok::Assign => write!(f, "="),
            Tok::Plus => write!(f, "+"),
            Tok::Minus => write!(f, "-"),
            Tok::Star => write!(f, "*"),
            Tok::Slash => write!(f, "/"),
            Tok::Percent => write!(f, "%"),
            Tok::PlusPlus => write!(f, "++"),
            Tok::Lt => write!(f, "<"),
            Tok::Le => write!(f, "<="),
            Tok::Gt => write!(f, ">"),
            Tok::Ge => write!(f, ">="),
            Tok::EqEq => write!(f, "=="),
            Tok::NotEq => write!(f, "!="),
            Tok::Dot => write!(f, "."),
            Tok::Eof => write!(f, "<eof>"),
        }
    }
}
