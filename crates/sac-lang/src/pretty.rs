//! Pretty-printing of SaC ASTs back to surface syntax.
//!
//! The printer produces parseable SaC text: `parse(print(parse(src)))` is the
//! identity on ASTs (property-tested in `tests/property.rs`). Used for
//! artefact output (optimised programs, inlined functions) and debugging.

use crate::ast::*;
use std::fmt::Write as _;

/// Render a whole program.
pub fn print_program(p: &Program) -> String {
    let mut out = String::new();
    for f in &p.funs {
        out.push_str(&print_fundef(f));
        out.push('\n');
    }
    out
}

/// Render one function definition.
pub fn print_fundef(f: &FunDef) -> String {
    let mut out = String::new();
    let params: Vec<String> = f.params.iter().map(|(t, n)| format!("{t} {n}")).collect();
    let _ = writeln!(out, "{} {}({})", f.ret, f.name, params.join(", "));
    out.push_str("{\n");
    for s in &f.body {
        print_stmt(s, 1, &mut out);
    }
    out.push_str("}\n");
    out
}

fn indent(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("    ");
    }
}

fn print_stmt(s: &Stmt, depth: usize, out: &mut String) {
    indent(depth, out);
    match s {
        Stmt::Assign(LValue::Var(n), e) => {
            let _ = writeln!(out, "{n} = {};", print_expr(e));
        }
        Stmt::Assign(LValue::Index(n, ix), e) => {
            let _ = writeln!(out, "{n}[{}] = {};", print_expr(ix), print_expr(e));
        }
        Stmt::For { var, init, limit, body } => {
            let _ = writeln!(
                out,
                "for( {var}={}; {var}< {}; {var}++) {{",
                print_expr(init),
                print_expr(limit)
            );
            for s in body {
                print_stmt(s, depth + 1, out);
            }
            indent(depth, out);
            out.push_str("}\n");
        }
        Stmt::Return(e) => {
            let _ = writeln!(out, "return( {});", print_expr(e));
        }
    }
}

/// Binding strength for parenthesisation, mirroring the parser's precedence
/// ladder: cmp(1) < concat(2) < add(3) < mul(4) < unary(5) < postfix(6).
fn prec(e: &Expr) -> u8 {
    match e {
        Expr::Bin(op, ..) => match op {
            BinKind::Lt | BinKind::Le | BinKind::Gt | BinKind::Ge | BinKind::Eq | BinKind::Ne => 1,
            BinKind::Concat => 2,
            BinKind::Add | BinKind::Sub => 3,
            BinKind::Mul | BinKind::Div | BinKind::Mod => 4,
        },
        Expr::Neg(_) => 5,
        _ => 6,
    }
}

fn op_str(op: BinKind) -> &'static str {
    match op {
        BinKind::Add => "+",
        BinKind::Sub => "-",
        BinKind::Mul => "*",
        BinKind::Div => "/",
        BinKind::Mod => "%",
        BinKind::Concat => "++",
        BinKind::Lt => "<",
        BinKind::Le => "<=",
        BinKind::Gt => ">",
        BinKind::Ge => ">=",
        BinKind::Eq => "==",
        BinKind::Ne => "!=",
    }
}

fn child(e: &Expr, min: u8) -> String {
    let s = print_expr(e);
    if prec(e) < min {
        format!("({s})")
    } else {
        s
    }
}

/// Render one expression.
pub fn print_expr(e: &Expr) -> String {
    match e {
        Expr::Int(v) => v.to_string(),
        Expr::Var(n) => n.clone(),
        Expr::VecLit(es) => {
            let inner: Vec<String> = es.iter().map(print_expr).collect();
            format!("[{}]", inner.join(", "))
        }
        Expr::Neg(x) => format!("-{}", child(x, 5)),
        Expr::Bin(op, l, r) => {
            let p = prec(e);
            // Left-associative operators: the right child needs parens at
            // equal precedence.
            format!("{} {} {}", child(l, p), op_str(*op), child(r, p + 1))
        }
        Expr::Call(name, args) => {
            let inner: Vec<String> = args.iter().map(print_expr).collect();
            format!("{name}({})", inner.join(", "))
        }
        Expr::Select(a, ix) => format!("{}[{}]", child(a, 6), print_expr(ix)),
        Expr::With(w) => print_with(w),
        Expr::Block(stmts, result) => {
            // Blocks have no surface syntax; print as a comment-annotated
            // sequence (only reachable when printing inlined ASTs).
            let mut out = String::from("/*block*/ (");
            for s in stmts {
                let mut tmp = String::new();
                print_stmt(s, 0, &mut tmp);
                out.push_str(tmp.trim_end());
                out.push(' ');
            }
            let _ = write!(out, ": {})", print_expr(result));
            out
        }
    }
}

fn print_with(w: &WithLoop) -> String {
    let mut out = String::from("with {\n");
    for g in &w.generators {
        out.push_str("        (");
        match &g.lower {
            Some(e) => out.push_str(&print_expr(e)),
            None => out.push('.'),
        }
        out.push_str(" <= ");
        match &g.var {
            GenVar::Name(n) => out.push_str(n),
            GenVar::Components(ns) => {
                let _ = write!(out, "[{}]", ns.join(","));
            }
        }
        out.push_str(if g.upper_inclusive { " <= " } else { " < " });
        match &g.upper {
            Some(e) => out.push_str(&print_expr(e)),
            None => out.push('.'),
        }
        if let Some(s) = &g.step {
            let _ = write!(out, " step {}", print_expr(s));
        }
        if let Some(wd) = &g.width {
            let _ = write!(out, " width {}", print_expr(wd));
        }
        out.push(')');
        if !g.body.is_empty() {
            out.push_str(" {\n");
            for s in &g.body {
                print_stmt(s, 3, &mut out);
            }
            out.push_str("        }");
        }
        let _ = writeln!(out, " : {};", print_expr(&g.yield_expr));
    }
    out.push_str("    } : ");
    match &w.op {
        WithOp::Genarray { shape, default } => match default {
            Some(d) => {
                let _ = write!(out, "genarray( {}, {})", print_expr(shape), print_expr(d));
            }
            None => {
                let _ = write!(out, "genarray( {})", print_expr(shape));
            }
        },
        WithOp::Modarray(src) => {
            let _ = write!(out, "modarray( {})", print_expr(src));
        }
        WithOp::Fold { fun, neutral } => {
            let _ = write!(out, "fold( {fun}, {})", print_expr(neutral));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr, parse_program};

    fn roundtrip(src: &str) {
        let p1 = parse_program(src).unwrap();
        let printed = print_program(&p1);
        let p2 = parse_program(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n--- printed ---\n{printed}"));
        assert_eq!(p1, p2, "AST changed through print/parse:\n{printed}");
    }

    #[test]
    fn roundtrips_paper_figures() {
        roundtrip(&downscaler_like_src());
    }

    fn downscaler_like_src() -> String {
        // A condensed mix of every construct the paper's figures use.
        r#"
int[*] input_tiler(int[*] in_frame, int[.] in_pattern,
                   int[.] repetition, int[.] origin,
                   int[.,.] fitting, int[.,.] paving)
{
    output = with {
        (. <= rep <= .) {
            tile = with {
                (. <= pat <= .) {
                    off = origin + MV( CAT( paving, fitting) , rep ++ pat);
                    iv = off % shape(in_frame);
                    elem = in_frame[iv];
                } : elem;
            } : genarray( in_pattern, 0);
        } : tile;
    } : genarray( repetition);
    return( output);
}
int[*] scatter(int[4,6] out_frame, int[*] input, int[.] repetition)
{
    for( i=0; i< repetition[[0]]; i++) {
        for( j=0; j< repetition[[1]]; j++) {
            out_frame[[i,j]] = input[[i,j]] * 2 - 1;
        }
    }
    return( out_frame);
}
int[*] stepper(int[2,6] a)
{
    out = with {
        ([0,1] <= [i,j] < [2,6] step [1,3] width [1,1]) : a[[i, j/3]] + -3;
        ([0,0] <= iv <= . step [1,3]) : 0 - 7;
    } : modarray( a);
    return( out);
}
"#
        .to_string()
    }

    #[test]
    fn precedence_is_preserved() {
        for src in [
            "(1 + 2) * 3",
            "1 + 2 * 3",
            "1 - (2 - 3)",
            "1 - 2 - 3",
            "a ++ b + c",
            "(a ++ b) ++ c",
            "-(1 + 2)",
            "a[[1]] % 4 / 2",
            "1 < 2 + 3",
        ] {
            let e1 = parse_expr(src).unwrap();
            let printed = print_expr(&e1);
            let e2 = parse_expr(&printed).unwrap_or_else(|e| panic!("reparse of '{printed}': {e}"));
            assert_eq!(e1, e2, "'{src}' -> '{printed}'");
        }
    }

    #[test]
    fn negative_literals_print_parseably() {
        let e = parse_expr("[0, -3, 0]").unwrap();
        let printed = print_expr(&e);
        assert_eq!(parse_expr(&printed).unwrap(), e);
    }

    #[test]
    fn full_downscaler_sources_roundtrip() {
        // The real generated sources, both variants.
        let g = print_program(&parse_program(&crate_test_sources(false)).unwrap());
        assert!(parse_program(&g).is_ok(), "{g}");
        let ng = print_program(&parse_program(&crate_test_sources(true)).unwrap());
        assert!(parse_program(&ng).is_ok(), "{ng}");
    }

    /// Avoid a dev-dependency cycle on the downscaler crate: a faithful
    /// miniature with the same construct mix.
    fn crate_test_sources(nongeneric: bool) -> String {
        let mut s = downscaler_like_src();
        if nongeneric {
            s.push_str(
                r#"
int[*] out_tiler(int[*] output, int[*] input)
{
    output = with {
        ([0,0,0]<=[c,i,j]<=. step [1,1,3]):input[[c,i,j/3,0]];
        ([0,0,1]<=[c,i,j]<=. step [1,1,3]):input[[c,i,j/3,1]];
    } : modarray( output);
    return( output);
}
"#,
            );
        }
        s
    }
}
