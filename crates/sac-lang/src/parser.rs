//! Recursive-descent parser for the SaC subset.

use crate::ast::*;
use crate::lexer::lex;
use crate::token::{Tok, Token};
use crate::SacError;

/// Parse a whole program (a sequence of function definitions).
pub fn parse_program(src: &str) -> Result<Program, SacError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let mut funs = Vec::new();
    while p.peek() != &Tok::Eof {
        funs.push(p.fundef()?);
    }
    Ok(Program { funs })
}

/// Parse a single expression (handy for tests and the REPL-style examples).
pub fn parse_expr(src: &str) -> Result<Expr, SacError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let e = p.expr()?;
    p.expect(Tok::Eof)?;
    Ok(e)
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].kind
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].kind
    }

    fn line(&self) -> usize {
        self.toks[self.pos].line
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].kind.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, SacError> {
        Err(SacError::Parse { line: self.line(), msg: msg.into() })
    }

    fn expect(&mut self, t: Tok) -> Result<(), SacError> {
        if self.peek() == &t {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected '{t}', found '{}'", self.peek()))
        }
    }

    fn ident(&mut self) -> Result<String, SacError> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => self.err(format!("expected identifier, found '{other}'")),
        }
    }

    // ---- declarations -------------------------------------------------

    fn type_ann(&mut self) -> Result<TypeAnn, SacError> {
        let base = self.ident()?;
        if base != "int" {
            return self.err(format!("unknown base type '{base}' (only 'int' is supported)"));
        }
        if self.peek() != &Tok::LBracket {
            return Ok(TypeAnn::Int);
        }
        self.bump(); // [
        let ann = match self.peek().clone() {
            Tok::Star => {
                self.bump();
                TypeAnn::ArrAnyRank
            }
            Tok::Dot => {
                let mut rank = 0usize;
                loop {
                    self.expect(Tok::Dot)?;
                    rank += 1;
                    if self.peek() == &Tok::Comma {
                        self.bump();
                    } else {
                        break;
                    }
                }
                TypeAnn::ArrRank(rank)
            }
            Tok::Int(_) => {
                let mut dims = Vec::new();
                loop {
                    match self.bump() {
                        Tok::Int(v) if v >= 0 => dims.push(v as usize),
                        other => return self.err(format!("bad shape dimension '{other}'")),
                    }
                    if self.peek() == &Tok::Comma {
                        self.bump();
                    } else {
                        break;
                    }
                }
                TypeAnn::ArrShape(dims)
            }
            other => return self.err(format!("bad type shape '{other}'")),
        };
        self.expect(Tok::RBracket)?;
        Ok(ann)
    }

    fn fundef(&mut self) -> Result<FunDef, SacError> {
        let ret = self.type_ann()?;
        let name = self.ident()?;
        self.expect(Tok::LParen)?;
        let mut params = Vec::new();
        if self.peek() != &Tok::RParen {
            loop {
                let ann = self.type_ann()?;
                let pname = self.ident()?;
                params.push((ann, pname));
                if self.peek() == &Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(Tok::RParen)?;
        let body = self.block()?;
        Ok(FunDef { name, ret, params, body })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, SacError> {
        self.expect(Tok::LBrace)?;
        let mut stmts = Vec::new();
        while self.peek() != &Tok::RBrace {
            stmts.push(self.stmt()?);
        }
        self.expect(Tok::RBrace)?;
        Ok(stmts)
    }

    // ---- statements ----------------------------------------------------

    fn stmt(&mut self) -> Result<Stmt, SacError> {
        match self.peek().clone() {
            Tok::Return => {
                self.bump();
                let e = self.expr()?;
                self.expect(Tok::Semi)?;
                Ok(Stmt::Return(e))
            }
            Tok::For => self.for_stmt(),
            Tok::Ident(name) => {
                self.bump();
                match self.peek().clone() {
                    Tok::Assign => {
                        self.bump();
                        let e = self.expr()?;
                        self.expect(Tok::Semi)?;
                        Ok(Stmt::Assign(LValue::Var(name), e))
                    }
                    Tok::LBracket => {
                        self.bump();
                        let ix = self.expr()?;
                        self.expect(Tok::RBracket)?;
                        // `x[[i]] = e` parses the inner [..] as a vector literal,
                        // so a second closing bracket may follow.
                        self.expect(Tok::Assign)?;
                        let e = self.expr()?;
                        self.expect(Tok::Semi)?;
                        Ok(Stmt::Assign(LValue::Index(name, ix), e))
                    }
                    other => {
                        self.err(format!("expected '=' or '[' after '{name}', found '{other}'"))
                    }
                }
            }
            other => self.err(format!("expected statement, found '{other}'")),
        }
    }

    fn for_stmt(&mut self) -> Result<Stmt, SacError> {
        self.expect(Tok::For)?;
        self.expect(Tok::LParen)?;
        let var = self.ident()?;
        self.expect(Tok::Assign)?;
        let init = self.expr()?;
        self.expect(Tok::Semi)?;
        let cond_var = self.ident()?;
        if cond_var != var {
            return self.err(format!("for condition must test '{var}', found '{cond_var}'"));
        }
        self.expect(Tok::Lt)?;
        let limit = self.expr()?;
        self.expect(Tok::Semi)?;
        let upd_var = self.ident()?;
        if upd_var != var {
            return self.err(format!("for update must increment '{var}', found '{upd_var}'"));
        }
        self.expect(Tok::PlusPlus)?;
        self.expect(Tok::RParen)?;
        let body = self.block()?;
        Ok(Stmt::For { var, init, limit, body })
    }

    // ---- expressions ---------------------------------------------------

    fn expr(&mut self) -> Result<Expr, SacError> {
        self.cmp()
    }

    fn cmp(&mut self) -> Result<Expr, SacError> {
        let lhs = self.concat()?;
        let op = match self.peek() {
            Tok::Lt => BinKind::Lt,
            Tok::Le => BinKind::Le,
            Tok::Gt => BinKind::Gt,
            Tok::Ge => BinKind::Ge,
            Tok::EqEq => BinKind::Eq,
            Tok::NotEq => BinKind::Ne,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.concat()?;
        Ok(Expr::Bin(op, Box::new(lhs), Box::new(rhs)))
    }

    fn concat(&mut self) -> Result<Expr, SacError> {
        let mut lhs = self.add()?;
        while self.peek() == &Tok::PlusPlus {
            self.bump();
            let rhs = self.add()?;
            lhs = Expr::Bin(BinKind::Concat, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn add(&mut self) -> Result<Expr, SacError> {
        let mut lhs = self.mul()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinKind::Add,
                Tok::Minus => BinKind::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn mul(&mut self) -> Result<Expr, SacError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinKind::Mul,
                Tok::Slash => BinKind::Div,
                Tok::Percent => BinKind::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.unary()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, SacError> {
        if self.peek() == &Tok::Minus {
            self.bump();
            let e = self.unary()?;
            return Ok(Expr::Neg(Box::new(e)));
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, SacError> {
        let mut e = self.primary()?;
        while self.peek() == &Tok::LBracket {
            self.bump();
            let ix = self.expr()?;
            self.expect(Tok::RBracket)?;
            e = Expr::Select(Box::new(e), Box::new(ix));
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, SacError> {
        match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                Ok(Expr::Int(v))
            }
            Tok::Ident(name) => {
                self.bump();
                if self.peek() == &Tok::LParen {
                    self.bump();
                    let mut args = Vec::new();
                    if self.peek() != &Tok::RParen {
                        loop {
                            args.push(self.expr()?);
                            if self.peek() == &Tok::Comma {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(Tok::RParen)?;
                    Ok(Expr::Call(name, args))
                } else {
                    Ok(Expr::Var(name))
                }
            }
            Tok::LBracket => {
                self.bump();
                let mut elems = Vec::new();
                if self.peek() != &Tok::RBracket {
                    loop {
                        elems.push(self.expr()?);
                        if self.peek() == &Tok::Comma {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
                self.expect(Tok::RBracket)?;
                Ok(Expr::VecLit(elems))
            }
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            // `genarray(shape, default)` in expression position is SaC's
            // array-constructor function (the paper's Figure 5 uses it to
            // allocate `tile`). The with-loop *operation* form is parsed
            // separately in `with_op`.
            Tok::Genarray => {
                self.bump();
                self.expect(Tok::LParen)?;
                let mut args = vec![self.expr()?];
                while self.peek() == &Tok::Comma {
                    self.bump();
                    args.push(self.expr()?);
                }
                self.expect(Tok::RParen)?;
                Ok(Expr::Call("genarray".into(), args))
            }
            Tok::With => self.with_loop(),
            other => self.err(format!("expected expression, found '{other}'")),
        }
    }

    // ---- WITH-loops ----------------------------------------------------

    fn with_loop(&mut self) -> Result<Expr, SacError> {
        self.expect(Tok::With)?;
        self.expect(Tok::LBrace)?;
        let mut generators = Vec::new();
        while self.peek() == &Tok::LParen {
            generators.push(self.generator()?);
        }
        if generators.is_empty() {
            return self.err("with-loop needs at least one generator");
        }
        self.expect(Tok::RBrace)?;
        self.expect(Tok::Colon)?;
        let op = self.with_op()?;
        Ok(Expr::With(Box::new(WithLoop { generators, op })))
    }

    fn bound(&mut self) -> Result<Option<Expr>, SacError> {
        if self.peek() == &Tok::Dot {
            // A lone `.`; distinguish from an expression that cannot start
            // with `.` anyway.
            self.bump();
            Ok(None)
        } else {
            // Bounds parse below the comparison level: the `<=`/`<` after a
            // bound belongs to the generator syntax, not to the expression.
            Ok(Some(self.concat()?))
        }
    }

    fn gen_var(&mut self) -> Result<GenVar, SacError> {
        match self.peek().clone() {
            Tok::Ident(name) => {
                self.bump();
                Ok(GenVar::Name(name))
            }
            Tok::LBracket => {
                self.bump();
                let mut names = Vec::new();
                loop {
                    names.push(self.ident()?);
                    if self.peek() == &Tok::Comma {
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.expect(Tok::RBracket)?;
                Ok(GenVar::Components(names))
            }
            other => self.err(format!("expected generator variable, found '{other}'")),
        }
    }

    fn rel(&mut self) -> Result<bool, SacError> {
        // Returns true when the relation is `<=` (inclusive).
        match self.bump() {
            Tok::Le => Ok(true),
            Tok::Lt => Ok(false),
            other => self.err(format!("expected '<' or '<=', found '{other}'")),
        }
    }

    fn generator(&mut self) -> Result<Generator, SacError> {
        self.expect(Tok::LParen)?;
        let lower = self.bound()?;
        let lo_incl = self.rel()?;
        if !lo_incl {
            return self.err("lower generator bound must use '<='");
        }
        let var = self.gen_var()?;
        let upper_inclusive = self.rel()?;
        let upper = self.bound()?;
        let mut step = None;
        let mut width = None;
        if self.peek() == &Tok::Step {
            self.bump();
            step = Some(self.expr()?);
            if self.peek() == &Tok::Width {
                self.bump();
                width = Some(self.expr()?);
            }
        }
        self.expect(Tok::RParen)?;
        let body = if self.peek() == &Tok::LBrace { self.block()? } else { Vec::new() };
        self.expect(Tok::Colon)?;
        let yield_expr = self.expr()?;
        self.expect(Tok::Semi)?;
        for s in &body {
            if matches!(s, Stmt::Return(_)) {
                return self.err("return not allowed inside a generator body");
            }
        }
        Ok(Generator { lower, upper, upper_inclusive, step, width, var, body, yield_expr })
    }

    fn with_op(&mut self) -> Result<WithOp, SacError> {
        match self.bump() {
            Tok::Genarray => {
                self.expect(Tok::LParen)?;
                let shape = self.expr()?;
                let default = if self.peek() == &Tok::Comma {
                    self.bump();
                    Some(self.expr()?)
                } else {
                    None
                };
                self.expect(Tok::RParen)?;
                Ok(WithOp::Genarray { shape, default })
            }
            Tok::Modarray => {
                self.expect(Tok::LParen)?;
                let src = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(WithOp::Modarray(src))
            }
            Tok::Fold => {
                self.expect(Tok::LParen)?;
                let fun = match self.bump() {
                    Tok::Plus => "+".to_string(),
                    Tok::Star => "*".to_string(),
                    Tok::Ident(n) if n == "min" || n == "max" => n,
                    other => {
                        return self
                            .err(format!("fold expects '+', '*', 'min' or 'max', found '{other}'"))
                    }
                };
                self.expect(Tok::Comma)?;
                let neutral = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(WithOp::Fold { fun, neutral })
            }
            other => self.err(format!("expected genarray/modarray/fold, found '{other}'")),
        }
    }
}

// `peek2` is used by no production today but kept for the grammar's
// documented lookahead budget (LL(2)).
impl Parser {
    #[allow(dead_code)]
    fn lookahead_is(&self, t: &Tok) -> bool {
        self.peek2() == t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_function() {
        let p = parse_program("int f(int x) { y = x + 1; return( y); }").unwrap();
        assert_eq!(p.funs.len(), 1);
        let f = &p.funs[0];
        assert_eq!(f.name, "f");
        assert_eq!(f.params, vec![(TypeAnn::Int, "x".into())]);
        assert_eq!(f.body.len(), 2);
    }

    #[test]
    fn parses_type_annotations() {
        let p =
            parse_program("int[*] g(int[.] a, int[.,.] b, int[4,8] c) { return( a); }").unwrap();
        let f = &p.funs[0];
        assert_eq!(f.ret, TypeAnn::ArrAnyRank);
        assert_eq!(f.params[0].0, TypeAnn::ArrRank(1));
        assert_eq!(f.params[1].0, TypeAnn::ArrRank(2));
        assert_eq!(f.params[2].0, TypeAnn::ArrShape(vec![4, 8]));
    }

    #[test]
    fn parses_paper_input_tiler() {
        // Figure 4, verbatim modulo whitespace.
        let src = r#"
int[*] input_tiler(int[*] in_frame, int[.] in_pattern,
                   int[.] repetition, int[.] origin,
                   int[.,.] fitting, int[.,.] paving)
{
    output = with {
        (. <= rep <= .) {
            tile = with {
                (. <= pat <= .) {
                    off = origin + MV( CAT( paving, fitting) , rep++pat);
                    iv = off % shape(in_frame);
                    elem = in_frame[iv];
                } : elem;
            } : genarray( in_pattern, 0);
        } : tile;
    } : genarray( repetition);
    return( output);
}
"#;
        let p = parse_program(src).unwrap();
        let f = &p.funs[0];
        assert_eq!(f.name, "input_tiler");
        assert_eq!(f.params.len(), 6);
        // The outer assignment binds a with-loop.
        match &f.body[0] {
            Stmt::Assign(LValue::Var(n), Expr::With(w)) => {
                assert_eq!(n, "output");
                assert_eq!(w.generators.len(), 1);
                let g = &w.generators[0];
                assert!(g.lower.is_none() && g.upper.is_none());
                assert!(g.upper_inclusive);
                // Nested with in the body.
                assert!(matches!(&g.body[0], Stmt::Assign(_, Expr::With(_))));
            }
            other => panic!("unexpected stmt {other:?}"),
        }
    }

    #[test]
    fn parses_step_width_generators() {
        let src = r#"
int[1080,720] f(int[1080,1920] in_frame)
{
    output = with {
        ( [0,0] <= iv < [1080,1] step [1,3] width [1,1] ) { r = in_frame[iv]; } : r;
        ( [0,1] <= iv < [1080,720] step [1,3] ) : 0;
    } : genarray( [1080, 720]);
    return( output);
}
"#;
        let p = parse_program(src).unwrap();
        match &p.funs[0].body[0] {
            Stmt::Assign(_, Expr::With(w)) => {
                assert_eq!(w.generators.len(), 2);
                assert!(w.generators[0].step.is_some());
                assert!(w.generators[0].width.is_some());
                assert!(!w.generators[0].upper_inclusive);
                assert!(w.generators[1].step.is_some());
                assert!(w.generators[1].width.is_none());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_nongeneric_output_tiler() {
        // Figure 7 verbatim (with the missing paren fixed).
        let src = r#"
int[*] nongeneric_output_tiler(int[*] output, int[*] input)
{
    output = with {
        ([0,0]<=[i,j]<=. step [1,3]):input[[i,j/3,0]];
        ([0,1]<=[i,j]<=. step [1,3]):input[[i,j/3,1]];
        ([0,2]<=[i,j]<=. step [1,3]):input[[i,j/3,2]];
    } : modarray( output);
    return( output);
}
"#;
        let p = parse_program(src).unwrap();
        match &p.funs[0].body[0] {
            Stmt::Assign(_, Expr::With(w)) => {
                assert_eq!(w.generators.len(), 3);
                assert!(matches!(w.op, WithOp::Modarray(_)));
                let g = &w.generators[0];
                assert_eq!(g.var, GenVar::Components(vec!["i".into(), "j".into()]));
                assert!(g.upper.is_none());
                // input[[i, j/3, 0]] = Select with a vector-literal index.
                match &g.yield_expr {
                    Expr::Select(_, ix) => assert!(matches!(**ix, Expr::VecLit(_))),
                    other => panic!("unexpected yield {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_for_loop_nest() {
        // Figure 6's scatter loop shape.
        let src = r#"
int[*] scatter(int[*] out_frame, int[*] input, int[.] repetition)
{
    for( i=0; i< repetition[[0]]; i++) {
        for( j=0; j< repetition[[1]]; j++) {
            out_frame[[i,j]] = input[[i,j]];
        }
    }
    return( out_frame);
}
"#;
        let p = parse_program(src).unwrap();
        match &p.funs[0].body[0] {
            Stmt::For { var, body, .. } => {
                assert_eq!(var, "i");
                assert!(matches!(&body[0], Stmt::For { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_mismatched_for_variable() {
        let src = "int f() { for( i=0; j<10; i++) { x = 0; } return( 0); }";
        assert!(matches!(parse_program(src), Err(SacError::Parse { .. })));
    }

    #[test]
    fn rejects_return_in_generator_body() {
        let src =
            "int f() { x = with { (.<=iv<=.) { return( 0); } : 1; } : genarray([2]); return( x); }";
        assert!(matches!(parse_program(src), Err(SacError::Parse { .. })));
    }

    #[test]
    fn expression_precedence() {
        let e = parse_expr("1 + 2 * 3").unwrap();
        match e {
            Expr::Bin(BinKind::Add, _, rhs) => {
                assert!(matches!(*rhs, Expr::Bin(BinKind::Mul, _, _)))
            }
            other => panic!("unexpected {other:?}"),
        }
        // ++ binds looser than +.
        let e = parse_expr("a ++ b + c").unwrap();
        assert!(matches!(e, Expr::Bin(BinKind::Concat, _, _)));
    }

    #[test]
    fn indexed_assignment() {
        let p = parse_program("int f(int[.] t) { t[0] = 5; return( t); }").unwrap();
        assert!(matches!(&p.funs[0].body[0], Stmt::Assign(LValue::Index(n, _), _) if n == "t"));
    }

    #[test]
    fn negative_literals_in_vectors() {
        let e = parse_expr("[-3, 0]").unwrap();
        match e {
            Expr::VecLit(elems) => assert!(matches!(elems[0], Expr::Neg(_))),
            other => panic!("unexpected {other:?}"),
        }
    }
}
