//! Interval and congruence analysis of symbolic index expressions.
//!
//! Generator splitting (both the WLF producer-region matching and the
//! wrap-around modulo resolution) needs to answer, for a [`SymExpr`] over a
//! generator's index variables:
//!
//! * what is the expression's value range over the generator's lattice?
//!   ([`interval`])
//! * what congruence class does the value provably inhabit? ([`congruence`])
//!
//! Both analyses are conservative: when they cannot prove anything they say
//! so (`None` interval / modulus-1 congruence), and callers must either split
//! the generator or keep the general (still correct) code path.

use crate::ast::BinKind;
use crate::wir::{FlatGen, SymExpr};

/// An inclusive value range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Minimum value.
    pub lo: i64,
    /// Maximum value.
    pub hi: i64,
}

impl Interval {
    /// A single point.
    pub fn point(v: i64) -> Interval {
        Interval { lo: v, hi: v }
    }

    /// Is this range entirely inside `[lo, hi]`?
    pub fn within(&self, lo: i64, hi: i64) -> bool {
        self.lo >= lo && self.hi <= hi
    }

    /// Is this range entirely outside `[lo, hi]`?
    pub fn disjoint(&self, lo: i64, hi: i64) -> bool {
        self.hi < lo || self.lo > hi
    }
}

/// A congruence fact: the value is `≡ residue (mod modulus)`.
///
/// * `modulus == 0` means the value is exactly `residue` (a constant),
/// * `modulus == 1` means nothing is known.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cong {
    /// The modulus (0 = constant, 1 = unknown).
    pub modulus: i64,
    /// The residue (normalised into `[0, modulus)` when `modulus > 1`).
    pub residue: i64,
}

impl Cong {
    /// Nothing known.
    pub fn top() -> Cong {
        Cong { modulus: 1, residue: 0 }
    }

    /// Exactly `v`.
    pub fn constant(v: i64) -> Cong {
        Cong { modulus: 0, residue: v }
    }

    fn norm(modulus: i64, residue: i64) -> Cong {
        match modulus {
            0 => Cong { modulus: 0, residue },
            1 => Cong::top(),
            m => Cong { modulus: m, residue: residue.rem_euclid(m) },
        }
    }

    /// Does this fact prove `value ≡ r (mod s)`? (`s ≥ 1`)
    pub fn implies(&self, s: i64, r: i64) -> bool {
        if s == 1 {
            return true;
        }
        match self.modulus {
            0 => self.residue.rem_euclid(s) == r.rem_euclid(s),
            m if m % s == 0 => self.residue.rem_euclid(s) == r.rem_euclid(s),
            _ => false,
        }
    }

    /// Does this fact refute `value ≡ r (mod s)`?
    pub fn refutes(&self, s: i64, r: i64) -> bool {
        if s == 1 {
            return false;
        }
        match self.modulus {
            0 => self.residue.rem_euclid(s) != r.rem_euclid(s),
            m if m % s == 0 => self.residue.rem_euclid(s) != r.rem_euclid(s),
            _ => false,
        }
    }
}

/// Range of index component `d` over the generator's lattice.
fn idx_interval(g: &FlatGen, d: usize) -> Option<Interval> {
    let (l, u, s, w) = (g.lower[d], g.upper[d], g.step[d], g.width[d]);
    if l >= u {
        return None; // empty
    }
    let last_block = l + ((u - 1 - l) / s) * s;
    let hi = (last_block + w - 1).min(u - 1);
    Some(Interval { lo: l, hi })
}

/// Congruence of index component `d`.
fn idx_cong(g: &FlatGen, d: usize) -> Cong {
    let (l, u, s, w) = (g.lower[d], g.upper[d], g.step[d], g.width[d]);
    if l + 1 == u {
        return Cong::constant(l);
    }
    if w == 1 && s > 1 {
        Cong::norm(s, l)
    } else {
        Cong::top()
    }
}

/// Value range of `e` over `g`'s lattice; `None` when unknown (loads, empty
/// lattices, division by non-positive constants, …).
pub fn interval(e: &SymExpr, g: &FlatGen) -> Option<Interval> {
    match e {
        SymExpr::Const(v) => Some(Interval::point(*v)),
        SymExpr::Idx(d) => idx_interval(g, *d),
        SymExpr::Load { .. } => None,
        SymExpr::Bin(op, l, r) => {
            let a = interval(l, g)?;
            match op {
                BinKind::Add => {
                    let b = interval(r, g)?;
                    Some(Interval { lo: a.lo + b.lo, hi: a.hi + b.hi })
                }
                BinKind::Sub => {
                    let b = interval(r, g)?;
                    Some(Interval { lo: a.lo - b.hi, hi: a.hi - b.lo })
                }
                BinKind::Mul => {
                    let b = interval(r, g)?;
                    let corners = [a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi];
                    Some(Interval {
                        lo: *corners.iter().min().unwrap(),
                        hi: *corners.iter().max().unwrap(),
                    })
                }
                BinKind::Div => {
                    // Truncating division is monotone for positive divisors.
                    let b = interval(r, g)?;
                    if b.lo != b.hi || b.lo <= 0 {
                        return None;
                    }
                    let d = b.lo;
                    Some(Interval { lo: a.lo.wrapping_div(d), hi: a.hi.wrapping_div(d) })
                }
                BinKind::Mod => {
                    let b = interval(r, g)?;
                    if b.lo != b.hi || b.lo <= 0 {
                        return None;
                    }
                    let n = b.lo;
                    let k_lo = a.lo.div_euclid(n);
                    let k_hi = a.hi.div_euclid(n);
                    if k_lo == k_hi {
                        Some(Interval { lo: a.lo - k_lo * n, hi: a.hi - k_lo * n })
                    } else {
                        Some(Interval { lo: 0, hi: n - 1 })
                    }
                }
                // Comparisons yield 0/1.
                BinKind::Lt
                | BinKind::Le
                | BinKind::Gt
                | BinKind::Ge
                | BinKind::Eq
                | BinKind::Ne => Some(Interval { lo: 0, hi: 1 }),
                BinKind::Concat => None,
            }
        }
    }
}

/// Congruence fact about `e` over `g`'s lattice.
pub fn congruence(e: &SymExpr, g: &FlatGen) -> Cong {
    match e {
        SymExpr::Const(v) => Cong::constant(*v),
        SymExpr::Idx(d) => {
            // A single-point interval is an exact constant.
            match idx_interval(g, *d) {
                Some(iv) if iv.lo == iv.hi => Cong::constant(iv.lo),
                _ => idx_cong(g, *d),
            }
        }
        SymExpr::Load { .. } => Cong::top(),
        SymExpr::Bin(op, l, r) => {
            let a = congruence(l, g);
            let b = congruence(r, g);
            match op {
                BinKind::Add => combine_additive(a, b, 1),
                BinKind::Sub => combine_additive(a, b, -1),
                BinKind::Mul => match (a.modulus, b.modulus) {
                    (0, 0) => Cong::constant(a.residue * b.residue),
                    (0, m) => scale(b, a.residue, m),
                    (m, 0) => scale(a, b.residue, m),
                    _ => Cong::top(),
                },
                BinKind::Div => {
                    // Exact division: d | modulus and d | residue.
                    if b.modulus == 0 && b.residue > 0 {
                        let d = b.residue;
                        match a.modulus {
                            0 if a.residue % d == 0 => Cong::constant(a.residue / d),
                            m if m > 1 && m % d == 0 && a.residue % d == 0 => {
                                Cong::norm(m / d, a.residue / d)
                            }
                            _ => Cong::top(),
                        }
                    } else {
                        Cong::top()
                    }
                }
                BinKind::Mod => {
                    if b.modulus == 0 && b.residue > 0 {
                        let n = b.residue;
                        match a.modulus {
                            0 => Cong::constant(a.residue.rem_euclid(n)),
                            m if m > 1 && m % n == 0 => Cong::constant(a.residue.rem_euclid(n)),
                            _ => {
                                // Fall back to interval reasoning: within one
                                // window the value keeps its congruence shape.
                                Cong::top()
                            }
                        }
                    } else {
                        Cong::top()
                    }
                }
                _ => Cong::top(),
            }
        }
    }
}

fn combine_additive(a: Cong, b: Cong, sign: i64) -> Cong {
    match (a.modulus, b.modulus) {
        (0, 0) => Cong::constant(a.residue + sign * b.residue),
        (0, m) if m > 1 => Cong::norm(m, a.residue + sign * b.residue),
        (m, 0) if m > 1 => Cong::norm(m, a.residue + sign * b.residue),
        (m1, m2) if m1 > 1 && m2 > 1 => {
            let g = gcd(m1, m2);
            Cong::norm(g, a.residue + sign * b.residue)
        }
        _ => Cong::top(),
    }
}

/// `value = k * e` where `e ≡ r (mod m)`. Valid for every `m ≥ 1`: even a
/// fully unknown `e` (m = 1, r = 0) yields `k·e ≡ 0 (mod |k|)`.
fn scale(c: Cong, k: i64, m: i64) -> Cong {
    if k == 0 {
        return Cong::constant(0);
    }
    debug_assert!(m > 0);
    Cong::norm(m * k.abs(), c.residue * k)
}

fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use BinKind::*;

    fn gen(lower: Vec<i64>, upper: Vec<i64>, step: Vec<i64>) -> FlatGen {
        let width = vec![1; lower.len()];
        FlatGen { lower, upper, step, width, body: SymExpr::Const(0) }
    }

    #[test]
    fn idx_interval_respects_step() {
        // j in [1, 8) step 3: {1, 4, 7} -> [1, 7].
        let g = gen(vec![1], vec![8], vec![3]);
        assert_eq!(interval(&SymExpr::Idx(0), &g), Some(Interval { lo: 1, hi: 7 }));
        // j in [1, 7) step 3: {1, 4} -> [1, 4].
        let g = gen(vec![1], vec![7], vec![3]);
        assert_eq!(interval(&SymExpr::Idx(0), &g), Some(Interval { lo: 1, hi: 4 }));
    }

    #[test]
    fn affine_interval() {
        // 8*t + 5 for t in [0, 240): [5, 1917].
        let g = gen(vec![0], vec![240], vec![1]);
        let e = SymExpr::bin(
            Add,
            SymExpr::bin(Mul, SymExpr::Const(8), SymExpr::Idx(0)),
            SymExpr::Const(5),
        );
        assert_eq!(interval(&e, &g), Some(Interval { lo: 5, hi: 1917 }));
    }

    #[test]
    fn mod_interval_resolves_within_window() {
        let g = gen(vec![0], vec![240], vec![1]);
        // (8t + 5) % 1920 stays below 1920 -> same as 8t+5.
        let e = SymExpr::bin(
            Mod,
            SymExpr::bin(
                Add,
                SymExpr::bin(Mul, SymExpr::Const(8), SymExpr::Idx(0)),
                SymExpr::Const(5),
            ),
            SymExpr::Const(1920),
        );
        assert_eq!(interval(&e, &g), Some(Interval { lo: 5, hi: 1917 }));
        // (8t + 10) % 1920 crosses the boundary -> [0, 1919].
        let e = SymExpr::bin(
            Mod,
            SymExpr::bin(
                Add,
                SymExpr::bin(Mul, SymExpr::Const(8), SymExpr::Idx(0)),
                SymExpr::Const(10),
            ),
            SymExpr::Const(1920),
        );
        assert_eq!(interval(&e, &g), Some(Interval { lo: 0, hi: 1919 }));
    }

    #[test]
    fn congruence_of_stepped_index() {
        // j in [1, 720) step 3 -> j ≡ 1 (mod 3).
        let g = gen(vec![1], vec![720], vec![3]);
        let c = congruence(&SymExpr::Idx(0), &g);
        assert_eq!(c, Cong { modulus: 3, residue: 1 });
        assert!(c.implies(3, 1));
        assert!(c.refutes(3, 0));
        assert!(!c.implies(9, 1)); // only mod 3 is known
    }

    #[test]
    fn congruence_through_affine_ops() {
        let g = gen(vec![1], vec![720], vec![3]);
        // (j - 1) ≡ 0 (mod 3)
        let e = SymExpr::bin(Sub, SymExpr::Idx(0), SymExpr::Const(1));
        let c = congruence(&e, &g);
        assert!(c.implies(3, 0));
        // (j - 1) / 3 is exact; congruence degrades gracefully to top-of-mod-1.
        let e = SymExpr::bin(Div, e, SymExpr::Const(3));
        let c = congruence(&e, &g);
        assert_eq!(c.modulus, 1);
        // 3*j ≡ 3 (mod 9).
        let e = SymExpr::bin(Mul, SymExpr::Const(3), SymExpr::Idx(0));
        let c = congruence(&e, &g);
        assert!(c.implies(9, 3));
    }

    #[test]
    fn exact_division_interval() {
        // (j - 1)/3 for j in {1,4,...,718}: [0, 239].
        let g = gen(vec![1], vec![720], vec![3]);
        let e = SymExpr::bin(
            Div,
            SymExpr::bin(Sub, SymExpr::Idx(0), SymExpr::Const(1)),
            SymExpr::Const(3),
        );
        assert_eq!(interval(&e, &g), Some(Interval { lo: 0, hi: 239 }));
    }

    #[test]
    fn constants_propagate() {
        let g = gen(vec![0], vec![1], vec![1]);
        // Single-point dims are constants.
        let c = congruence(&SymExpr::Idx(0), &g);
        assert_eq!(c, Cong::constant(0));
        assert!(c.implies(3, 0));
        assert!(c.refutes(3, 2));
    }

    #[test]
    fn loads_are_unknown() {
        let g = gen(vec![0], vec![4], vec![1]);
        let e = SymExpr::Load { array: 0, index: vec![SymExpr::Idx(0)] };
        assert_eq!(interval(&e, &g), None);
        assert_eq!(congruence(&e, &g), Cong::top());
    }

    #[test]
    fn mod_congruence_when_modulus_divides() {
        // j ≡ 2 (mod 6) -> j % 3 == 2 exactly.
        let g = gen(vec![2], vec![100], vec![6]);
        let e = SymExpr::bin(Mod, SymExpr::Idx(0), SymExpr::Const(3));
        let c = congruence(&e, &g);
        assert_eq!(c, Cong::constant(2));
    }
}
