//! Lowering: inlined AST → flat WIR.
//!
//! This pass performs, in one sweep, what sac2c spreads over several phases:
//!
//! * **constant propagation** — tiler matrices, pattern shapes and repetition
//!   spaces become known values,
//! * **vector scalarisation** — index vectors (`rep ++ pat`,
//!   `MV(CAT(paving, fitting), …)`, `off % shape(f)`) become per-component
//!   symbolic scalar expressions over generator index variables,
//! * **WITH-loop scalarisation** — nested WITH-loops (the input tiler's
//!   tile-producing inner loop) and the `tile = genarray(...); tile[k] = …`
//!   idiom (the task function) are flattened into scalar-celled generators
//!   over the concatenated index space,
//! * **host fallback** — constructs outside the data-parallel fragment
//!   (the generic output tiler's `for` nest) become [`Step::Host`] entries,
//!   exactly mirroring the paper: "the SAC compiler does not attempt to
//!   parallelise loops apart from WITH-loops, [so] the for-loop nest is
//!   executed on the host".

use crate::ast::*;
use crate::builtins::{call_builtin, is_builtin};
use crate::value::Value;
use crate::wir::{FlatGen, FlatProgram, FlatWith, HostBinding, Step, SymExpr};
use crate::SacError;
use std::collections::HashMap;

/// How an entry-function argument is supplied.
#[derive(Debug, Clone)]
pub enum ArgDesc {
    /// A runtime array input of known shape.
    Array {
        /// Diagnostic name.
        name: String,
        /// The (AKS) shape.
        shape: Vec<usize>,
    },
    /// A compile-time constant (scalars, tiler vectors/matrices).
    Const(Value),
}

/// Lower `entry` (already inlined) to a flat program.
pub fn lower_function(entry: &FunDef, args: &[ArgDesc]) -> Result<FlatProgram, SacError> {
    if entry.params.len() != args.len() {
        return Err(SacError::NotLowerable {
            construct: "entry".into(),
            msg: format!(
                "expected {} argument descriptors, got {}",
                entry.params.len(),
                args.len()
            ),
        });
    }
    let mut lw = Lowerer { prog: FlatProgram::default(), env: HashMap::new(), ctx_rank: 0, tmp: 0 };
    for ((_, pname), desc) in entry.params.iter().zip(args) {
        match desc {
            ArgDesc::Array { name, shape } => {
                let id = lw.prog.declare(name.clone(), shape.clone());
                lw.prog.inputs.push(id);
                lw.env.insert(pname.clone(), LV::Array(id));
            }
            ArgDesc::Const(v) => {
                lw.env.insert(pname.clone(), LV::Known(v.clone()));
            }
        }
    }
    let flat = flatten_blocks(&entry.body);
    let result = lw.lower_toplevel(&flat)?;
    lw.prog.result = result;
    Ok(lw.prog)
}

/// Splice `Expr::Block`s produced by the inliner into straight-line statement
/// lists (inliner-renamed names are globally unique, so flattening is safe).
fn flatten_blocks(stmts: &[Stmt]) -> Vec<Stmt> {
    let mut out = Vec::new();
    for s in stmts {
        match s {
            Stmt::Assign(lv, Expr::Block(inner, res)) => {
                out.extend(flatten_blocks(inner));
                out.extend(flatten_blocks(&[Stmt::Assign(lv.clone(), (**res).clone())]));
            }
            Stmt::Return(Expr::Block(inner, res)) => {
                out.extend(flatten_blocks(inner));
                out.extend(flatten_blocks(&[Stmt::Return((**res).clone())]));
            }
            other => out.push(other.clone()),
        }
    }
    out
}

/// A lowered value.
#[derive(Debug, Clone)]
enum LV {
    /// Fully known constant.
    Known(Value),
    /// Symbolic scalar over generator index variables.
    Scalar(SymExpr),
    /// Symbolic vector of known length.
    Vector(Vec<SymExpr>),
    /// A program-level array.
    Array(usize),
    /// Partial selection into an array: `array[prefix…]`.
    Slice {
        /// Array id.
        array: usize,
        /// Leading index components already applied.
        prefix: Vec<SymExpr>,
    },
    /// A with-loop lowered inside a generator context (a "tile"): its own
    /// dims occupy `Idx(base..base+shape.len())`.
    Nested(NestedW),
}

#[derive(Debug, Clone)]
struct NestedW {
    shape: Vec<usize>,
    default: i64,
    /// Generators with bounds over the nested dims only; bodies may reference
    /// outer `Idx` values below `base`.
    gens: Vec<FlatGen>,
    /// First `Idx` number of the nested dims.
    base: usize,
}

struct Lowerer {
    prog: FlatProgram,
    env: HashMap<String, LV>,
    /// Number of generator index vars currently in scope.
    ctx_rank: usize,
    tmp: usize,
}

fn not_lowerable(construct: &str, msg: impl Into<String>) -> SacError {
    SacError::NotLowerable { construct: construct.into(), msg: msg.into() }
}

impl Lowerer {
    // ---- toplevel ------------------------------------------------------

    fn lower_toplevel(&mut self, stmts: &[Stmt]) -> Result<usize, SacError> {
        for s in stmts {
            match s {
                Stmt::Assign(LValue::Var(name), e) => {
                    let lv = self.lower_expr(e, Some(name))?;
                    // Top-level aliases rename the array: the user-facing name
                    // (`hf = output_tiler(...)`) wins over inliner-generated
                    // temporaries (never the other way round), which keeps
                    // kernel names readable.
                    if let LV::Array(id) = lv {
                        if !name.starts_with("__inl") {
                            self.prog.arrays[id].name = name.clone();
                        }
                    }
                    self.env.insert(name.clone(), lv);
                }
                Stmt::Return(e) => {
                    let lv = self.lower_expr(e, Some("result"))?;
                    return match lv {
                        LV::Array(id) => Ok(id),
                        LV::Known(Value::Arr(a)) => {
                            // Materialise a constant result via a dense fill.
                            let id = self.prog.declare("const_result", a.shape().dims().to_vec());
                            // One generator per element would be wasteful; a
                            // constant array result does not occur in the
                            // studied programs.
                            let _ = id;
                            Err(not_lowerable("return", "constant array results unsupported"))
                        }
                        other => Err(not_lowerable(
                            "return",
                            format!("result must be an array, found {other:?}"),
                        )),
                    };
                }
                // Imperative constructs: host fallback.
                Stmt::For { .. } | Stmt::Assign(LValue::Index(..), _) => {
                    self.lower_host_step(s)?;
                }
            }
        }
        Err(not_lowerable("entry", "function has no return statement"))
    }

    /// Wrap one unlowerable statement into a host step.
    fn lower_host_step(&mut self, stmt: &Stmt) -> Result<(), SacError> {
        // Free variables and assignment targets of the statement.
        let mut free = Vec::new();
        let mut targets = Vec::new();
        stmt_vars(stmt, &mut free, &mut targets);
        free.sort();
        free.dedup();
        targets.sort();
        targets.dedup();
        // Targets that name array-valued bindings (program arrays or known
        // constants like a zero-initialised frame) are outputs; everything
        // the statement reads must be bindable.
        let mut out_arrays: Vec<&String> = targets
            .iter()
            .filter(|t| {
                matches!(
                    self.env.get(t.as_str()),
                    Some(LV::Array(_)) | Some(LV::Known(Value::Arr(_)))
                )
            })
            .collect();
        if out_arrays.len() != 1 {
            return Err(not_lowerable(
                "host step",
                format!("expected exactly one array target, found {out_arrays:?}"),
            ));
        }
        let target_name = out_arrays.pop().unwrap().clone();

        let mut params: Vec<(TypeAnn, String)> = Vec::new();
        let mut bindings = Vec::new();
        for name in &free {
            match self.env.get(name.as_str()) {
                Some(LV::Array(id)) => {
                    params.push((TypeAnn::ArrAnyRank, name.clone()));
                    bindings.push(HostBinding::Array(*id));
                }
                Some(LV::Known(v)) => {
                    let ann = match v {
                        Value::Int(_) => TypeAnn::Int,
                        Value::Arr(a) => TypeAnn::ArrRank(a.rank()),
                    };
                    params.push((ann, name.clone()));
                    bindings.push(HostBinding::Const(v.clone()));
                }
                Some(other) => {
                    return Err(not_lowerable(
                        "host step",
                        format!("free variable '{name}' has non-materialisable value {other:?}"),
                    ))
                }
                None => {
                    // Names bound inside the statement itself (loop vars).
                    continue;
                }
            }
        }

        let shape = match self.env.get(&target_name) {
            Some(LV::Array(id)) => self.prog.arrays[*id].shape.clone(),
            Some(LV::Known(Value::Arr(a))) => a.shape().dims().to_vec(),
            _ => unreachable!("checked above"),
        };
        self.tmp += 1;
        let fun = FunDef {
            name: format!("__host_step_{}", self.tmp),
            ret: TypeAnn::ArrAnyRank,
            params,
            body: vec![stmt.clone(), Stmt::Return(Expr::Var(target_name.clone()))],
        };
        let new_id = self.prog.declare(format!("{target_name}_host"), shape);
        self.prog.steps.push(Step::Host {
            target: new_id,
            fun,
            bindings,
            reason: "for-loop nest is not data-parallel (stays on the host)".into(),
        });
        self.env.insert(target_name, LV::Array(new_id));
        Ok(())
    }

    // ---- expressions -----------------------------------------------------

    fn lower_expr(&mut self, e: &Expr, name_hint: Option<&str>) -> Result<LV, SacError> {
        match e {
            Expr::Int(v) => Ok(LV::Known(Value::Int(*v))),
            Expr::Var(n) => self
                .env
                .get(n)
                .cloned()
                .ok_or_else(|| not_lowerable("variable", format!("unknown variable '{n}'"))),
            Expr::Neg(x) => {
                let v = self.lower_expr(x, None)?;
                self.lower_binop(BinKind::Sub, LV::Known(Value::Int(0)), v)
            }
            Expr::VecLit(es) => {
                let parts: Result<Vec<LV>, _> =
                    es.iter().map(|x| self.lower_expr(x, None)).collect();
                let parts = parts?;
                // All-known components collapse to a known value.
                if parts.iter().all(|p| matches!(p, LV::Known(_))) {
                    let vals: Vec<Value> = parts
                        .iter()
                        .map(|p| match p {
                            LV::Known(v) => v.clone(),
                            _ => unreachable!(),
                        })
                        .collect();
                    if vals.iter().all(|v| matches!(v, Value::Int(_))) {
                        return Ok(LV::Known(Value::from_ivec(
                            vals.iter().map(|v| v.as_int().unwrap()).collect(),
                        )));
                    }
                    // Matrix literal.
                    let rows: Result<Vec<Vec<i64>>, _> = vals.iter().map(|v| v.as_ivec()).collect();
                    let rows = rows.map_err(|e| not_lowerable("matrix literal", e.to_string()))?;
                    let cols = rows.first().map_or(0, |r| r.len());
                    if rows.iter().any(|r| r.len() != cols) {
                        return Err(not_lowerable("matrix literal", "ragged rows"));
                    }
                    let data: Vec<i64> = rows.into_iter().flatten().collect();
                    return Ok(LV::Known(Value::Arr(
                        mdarray::NdArray::from_vec([vals.len(), cols], data)
                            .expect("length matches"),
                    )));
                }
                // Symbolic vector.
                let mut out = Vec::with_capacity(parts.len());
                for p in parts {
                    out.push(self.as_scalar(p)?);
                }
                Ok(LV::Vector(out))
            }
            Expr::Bin(op, l, r) => {
                let lv = self.lower_expr(l, None)?;
                let rv = self.lower_expr(r, None)?;
                self.lower_binop(*op, lv, rv)
            }
            Expr::Call(fname, args) => self.lower_call(fname, args),
            Expr::Select(a, ix) => {
                let base = self.lower_expr(a, None)?;
                let index = self.lower_expr(ix, None)?;
                self.lower_select(base, index)
            }
            Expr::With(w) => self.lower_with(w, name_hint),
            Expr::Block(stmts, result) => {
                // Generator-context blocks: just process assignments.
                for s in stmts {
                    match s {
                        Stmt::Assign(LValue::Var(n), e) => {
                            let lv = self.lower_expr(e, Some(n))?;
                            self.env.insert(n.clone(), lv);
                        }
                        Stmt::Assign(LValue::Index(n, ix), e) => {
                            self.lower_tile_write(n, ix, e)?;
                        }
                        other => {
                            return Err(not_lowerable(
                                "block",
                                format!("unsupported statement in expression block: {other:?}"),
                            ))
                        }
                    }
                }
                self.lower_expr(result, None)
            }
        }
    }

    fn lower_call(&mut self, fname: &str, args: &[Expr]) -> Result<LV, SacError> {
        if !is_builtin(fname) {
            return Err(not_lowerable("call", format!("user function '{fname}' was not inlined")));
        }
        let lowered: Result<Vec<LV>, _> = args.iter().map(|a| self.lower_expr(a, None)).collect();
        let lowered = lowered?;
        // `genarray` inside a generator builds a local tile: route it to the
        // nested representation even when fully constant, so subsequent
        // `tile[c] = …` writes can attach override generators.
        if fname == "genarray" && self.ctx_rank > 0 {
            let dims = match lowered.first() {
                Some(LV::Known(v)) => {
                    v.as_shape().map_err(|e| not_lowerable("genarray", e.to_string()))?
                }
                _ => return Err(not_lowerable("genarray", "shape must be constant")),
            };
            let d = match lowered.get(1) {
                Some(LV::Known(v)) => {
                    v.as_int().map_err(|e| not_lowerable("genarray", e.to_string()))?
                }
                None => 0,
                _ => return Err(not_lowerable("genarray", "default must be constant")),
            };
            return Ok(LV::Nested(NestedW {
                shape: dims,
                default: d,
                gens: Vec::new(),
                base: self.ctx_rank,
            }));
        }
        // Fully-known arguments: evaluate directly.
        if lowered.iter().all(|p| matches!(p, LV::Known(_))) {
            let vals: Vec<Value> = lowered
                .iter()
                .map(|p| match p {
                    LV::Known(v) => v.clone(),
                    _ => unreachable!(),
                })
                .collect();
            let v =
                call_builtin(fname, &vals).map_err(|e| not_lowerable("builtin", e.to_string()))?;
            return Ok(LV::Known(v));
        }
        match (fname, lowered.as_slice()) {
            ("shape", [arg]) => {
                let dims = self.shape_of(arg)?;
                Ok(LV::Known(Value::from_ivec(dims.iter().map(|&d| d as i64).collect())))
            }
            ("dim", [arg]) => Ok(LV::Known(Value::Int(self.shape_of(arg)?.len() as i64))),
            ("MV", [LV::Known(m), v]) => {
                let m = m.as_array().map_err(|e| not_lowerable("MV", e.to_string()))?;
                if m.rank() != 2 {
                    return Err(not_lowerable("MV", "matrix must be rank 2"));
                }
                let vec = self.as_vector(v.clone())?;
                let (rows, cols) = (m.shape().dim(0), m.shape().dim(1));
                if vec.len() != cols {
                    return Err(not_lowerable("MV", "dimension mismatch"));
                }
                let data = m.as_slice();
                let out: Vec<SymExpr> = (0..rows)
                    .map(|r| {
                        let mut acc = SymExpr::Const(0);
                        for (c, comp) in vec.iter().enumerate() {
                            let term = SymExpr::bin(
                                BinKind::Mul,
                                SymExpr::Const(data[r * cols + c]),
                                comp.clone(),
                            );
                            acc = SymExpr::bin(BinKind::Add, acc, term);
                        }
                        acc.simplify()
                    })
                    .collect();
                Ok(LV::Vector(out))
            }
            ("genarray", [shape, default]) => {
                let dims = match shape {
                    LV::Known(v) => {
                        v.as_shape().map_err(|e| not_lowerable("genarray", e.to_string()))?
                    }
                    _ => return Err(not_lowerable("genarray", "shape must be constant")),
                };
                let d = match default {
                    LV::Known(v) => {
                        v.as_int().map_err(|e| not_lowerable("genarray", e.to_string()))?
                    }
                    _ => return Err(not_lowerable("genarray", "default must be constant")),
                };
                Ok(LV::Nested(NestedW {
                    shape: dims,
                    default: d,
                    gens: Vec::new(),
                    base: self.ctx_rank,
                }))
            }
            _ => Err(not_lowerable(
                "builtin",
                format!("'{fname}' with symbolic arguments is not lowerable"),
            )),
        }
    }

    fn shape_of(&self, lv: &LV) -> Result<Vec<usize>, SacError> {
        match lv {
            LV::Known(v) => Ok(v.shape_vec()),
            LV::Array(id) => Ok(self.prog.arrays[*id].shape.clone()),
            LV::Slice { array, prefix } => {
                Ok(self.prog.arrays[*array].shape[prefix.len()..].to_vec())
            }
            LV::Vector(vs) => Ok(vec![vs.len()]),
            LV::Nested(nw) => Ok(nw.shape.clone()),
            LV::Scalar(_) => Ok(Vec::new()),
        }
    }

    fn as_scalar(&self, lv: LV) -> Result<SymExpr, SacError> {
        match lv {
            LV::Scalar(e) => Ok(e),
            LV::Known(Value::Int(v)) => Ok(SymExpr::Const(v)),
            other => Err(not_lowerable("scalar", format!("expected scalar, found {other:?}"))),
        }
    }

    fn as_vector(&self, lv: LV) -> Result<Vec<SymExpr>, SacError> {
        match lv {
            LV::Vector(vs) => Ok(vs),
            LV::Known(v) => {
                let iv = v.as_ivec().map_err(|e| not_lowerable("vector", e.to_string()))?;
                Ok(iv.into_iter().map(SymExpr::Const).collect())
            }
            other => Err(not_lowerable("vector", format!("expected vector, found {other:?}"))),
        }
    }

    fn lower_binop(&mut self, op: BinKind, l: LV, r: LV) -> Result<LV, SacError> {
        // Fully known: constant-fold.
        if let (LV::Known(a), LV::Known(b)) = (&l, &r) {
            let v = crate::eval::fold_binop(op, a, b)
                .map_err(|e| not_lowerable("binop", e.to_string()))?;
            return Ok(LV::Known(v));
        }
        if op == BinKind::Concat {
            let mut a = self.as_vector(l)?;
            let b = self.as_vector(r)?;
            a.extend(b);
            return Ok(LV::Vector(a));
        }
        // Vector-valued elementwise with broadcasting.
        let l_is_vec =
            matches!(&l, LV::Vector(_)) || matches!(&l, LV::Known(Value::Arr(a)) if a.rank() == 1);
        let r_is_vec =
            matches!(&r, LV::Vector(_)) || matches!(&r, LV::Known(Value::Arr(a)) if a.rank() == 1);
        match (l_is_vec, r_is_vec) {
            (true, true) => {
                let a = self.as_vector(l)?;
                let b = self.as_vector(r)?;
                if a.len() != b.len() {
                    return Err(not_lowerable("binop", "vector length mismatch"));
                }
                Ok(LV::Vector(
                    a.into_iter().zip(b).map(|(x, y)| SymExpr::bin(op, x, y).simplify()).collect(),
                ))
            }
            (true, false) => {
                let a = self.as_vector(l)?;
                let s = self.as_scalar(r)?;
                Ok(LV::Vector(
                    a.into_iter().map(|x| SymExpr::bin(op, x, s.clone()).simplify()).collect(),
                ))
            }
            (false, true) => {
                let s = self.as_scalar(l)?;
                let b = self.as_vector(r)?;
                Ok(LV::Vector(
                    b.into_iter().map(|y| SymExpr::bin(op, s.clone(), y).simplify()).collect(),
                ))
            }
            (false, false) => {
                let a = self.as_scalar(l)?;
                let b = self.as_scalar(r)?;
                Ok(LV::Scalar(SymExpr::bin(op, a, b).simplify()))
            }
        }
    }

    fn lower_select(&mut self, base: LV, index: LV) -> Result<LV, SacError> {
        let comps: Vec<SymExpr> = match &index {
            LV::Scalar(e) => vec![e.clone()],
            LV::Known(Value::Int(v)) => vec![SymExpr::Const(*v)],
            LV::Vector(_) | LV::Known(Value::Arr(_)) => self.as_vector(index.clone())?,
            other => return Err(not_lowerable("select", format!("bad index value {other:?}"))),
        };
        match base {
            LV::Array(id) => self.select_into(id, Vec::new(), comps),
            LV::Slice { array, prefix } => self.select_into(array, prefix, comps),
            LV::Known(Value::Arr(a)) => {
                // Constant table with symbolic index: only constant indices fold.
                let consts: Option<Vec<i64>> = comps
                    .iter()
                    .map(|c| match c {
                        SymExpr::Const(v) => Some(*v),
                        _ => None,
                    })
                    .collect();
                match consts {
                    Some(ix) => {
                        let v = crate::value::select_vec(&a, &ix)
                            .map_err(|e| not_lowerable("select", e.to_string()))?;
                        Ok(LV::Known(v))
                    }
                    None => Err(not_lowerable("select", "symbolic index into a constant array")),
                }
            }
            LV::Vector(vs) => {
                // Selecting a component of a symbolic vector needs a constant.
                match comps.as_slice() {
                    [SymExpr::Const(c)] if *c >= 0 && (*c as usize) < vs.len() => {
                        Ok(LV::Scalar(vs[*c as usize].clone()))
                    }
                    _ => Err(not_lowerable("select", "symbolic index into a symbolic vector")),
                }
            }
            other => Err(not_lowerable("select", format!("cannot select from {other:?}"))),
        }
    }

    fn select_into(
        &self,
        array: usize,
        mut prefix: Vec<SymExpr>,
        comps: Vec<SymExpr>,
    ) -> Result<LV, SacError> {
        let rank = self.prog.arrays[array].shape.len();
        prefix.extend(comps);
        if prefix.len() > rank {
            return Err(not_lowerable("select", "index rank exceeds array rank"));
        }
        if prefix.len() == rank {
            Ok(LV::Scalar(SymExpr::Load { array, index: prefix }))
        } else {
            Ok(LV::Slice { array, prefix })
        }
    }

    /// `tile[c] = value` inside a generator body: record an override generator
    /// on the nested with-loop bound to `name`.
    fn lower_tile_write(&mut self, name: &str, ix: &Expr, value: &Expr) -> Result<(), SacError> {
        let ixv = self.lower_expr(ix, None)?;
        let val = self.lower_expr(value, None)?;
        let val = self.as_scalar(val)?;
        let index: Vec<i64> = match ixv {
            LV::Known(v) => match &v {
                Value::Int(x) => vec![*x],
                Value::Arr(_) => {
                    v.as_ivec().map_err(|e| not_lowerable("tile write", e.to_string()))?
                }
            },
            _ => {
                return Err(not_lowerable(
                    "tile write",
                    "indexed assignment with a non-constant index inside a generator",
                ))
            }
        };
        // Promote known or symbolic vector values to the nested-tile form so
        // indexed writes can attach override generators (constant folding may
        // have turned `genarray([n], 0)` into a literal already).
        match self.env.get(name) {
            Some(LV::Known(Value::Arr(a))) if a.rank() >= 1 => {
                let shape = a.shape().dims().to_vec();
                let uniform = a.as_slice().windows(2).all(|w| w[0] == w[1]);
                let nw = if uniform {
                    NestedW {
                        shape,
                        default: a.as_slice().first().copied().unwrap_or(0),
                        gens: Vec::new(),
                        base: self.ctx_rank,
                    }
                } else {
                    let arr = a.clone();
                    let mut gens = Vec::new();
                    let mut iv = vec![0usize; arr.rank()];
                    loop {
                        gens.push(FlatGen {
                            lower: iv.iter().map(|&x| x as i64).collect(),
                            upper: iv.iter().map(|&x| x as i64 + 1).collect(),
                            step: vec![1; arr.rank()],
                            width: vec![1; arr.rank()],
                            body: SymExpr::Const(*arr.get_unchecked(&iv)),
                        });
                        let mut d = arr.rank();
                        let mut done = true;
                        while d > 0 {
                            d -= 1;
                            iv[d] += 1;
                            if iv[d] < arr.shape().dim(d) {
                                done = false;
                                break;
                            }
                            iv[d] = 0;
                        }
                        if done {
                            break;
                        }
                    }
                    NestedW { shape, default: 0, gens, base: self.ctx_rank }
                };
                self.env.insert(name.to_string(), LV::Nested(nw));
            }
            Some(LV::Vector(vs)) => {
                let gens = vs
                    .iter()
                    .enumerate()
                    .map(|(c, e)| FlatGen {
                        lower: vec![c as i64],
                        upper: vec![c as i64 + 1],
                        step: vec![1],
                        width: vec![1],
                        body: e.clone(),
                    })
                    .collect();
                let nw = NestedW { shape: vec![vs.len()], default: 0, gens, base: self.ctx_rank };
                self.env.insert(name.to_string(), LV::Nested(nw));
            }
            _ => {}
        }
        let Some(LV::Nested(nw)) = self.env.get_mut(name) else {
            return Err(not_lowerable(
                "tile write",
                format!("'{name}' is not a local tile (genarray) value"),
            ));
        };
        if index.len() != nw.shape.len() {
            return Err(not_lowerable("tile write", "index rank mismatch"));
        }
        for (d, (&x, &extent)) in index.iter().zip(&nw.shape).enumerate() {
            if x < 0 || x as usize >= extent {
                return Err(not_lowerable(
                    "tile write",
                    format!("index {x} out of bounds in dim {d} (extent {extent})"),
                ));
            }
        }
        nw.gens.push(FlatGen {
            lower: index.clone(),
            upper: index.iter().map(|&x| x + 1).collect(),
            step: vec![1; index.len()],
            width: vec![1; index.len()],
            body: val,
        });
        Ok(())
    }

    // ---- with-loops ------------------------------------------------------

    fn lower_with(&mut self, w: &WithLoop, name_hint: Option<&str>) -> Result<LV, SacError> {
        let outer_rank = self.ctx_rank;
        // Frame shape and default.
        let (frame, default, modarray_src): (Vec<usize>, i64, Option<usize>) = match &w.op {
            WithOp::Genarray { shape, default } => {
                let sv = self.lower_expr(shape, None)?;
                let frame = match sv {
                    LV::Known(v) => {
                        v.as_shape().map_err(|e| not_lowerable("genarray", e.to_string()))?
                    }
                    _ => return Err(not_lowerable("genarray", "shape must be constant")),
                };
                let d = match default {
                    Some(e) => match self.lower_expr(e, None)? {
                        LV::Known(v) => {
                            v.as_int().map_err(|e| not_lowerable("genarray", e.to_string()))?
                        }
                        _ => return Err(not_lowerable("genarray", "default must be constant")),
                    },
                    None => 0,
                };
                (frame, d, None)
            }
            WithOp::Modarray(src) => {
                let sv = self.lower_expr(src, None)?;
                let LV::Array(id) = sv else {
                    return Err(not_lowerable("modarray", "source must be a program-level array"));
                };
                let shape = self.prog.arrays[id].shape.clone();
                (shape, 0, Some(id))
            }
            WithOp::Fold { .. } => {
                // Reductions are outside the backend's data-parallel fragment
                // (the paper's backend handles genarray/modarray only).
                return Err(not_lowerable(
                    "fold",
                    "fold WITH-loops are not parallelised; they stay on the host",
                ));
            }
        };
        let rank = frame.len();

        // Lower each generator.
        struct LoweredGen {
            lower: Vec<i64>,
            upper: Vec<i64>,
            step: Vec<i64>,
            width: Vec<i64>,
            cell: LV,
        }
        let mut lowered: Vec<LoweredGen> = Vec::new();
        for gen in &w.generators {
            let eval_bound = |lw: &mut Self, e: &Option<Expr>, incl: bool, dotv: Vec<i64>| match e {
                None => Ok::<Vec<i64>, SacError>(dotv),
                Some(e) => {
                    let v = lw.lower_expr(e, None)?;
                    let LV::Known(v) = v else {
                        return Err(not_lowerable("generator bound", "must be constant"));
                    };
                    let mut vec = match &v {
                        Value::Int(x) if rank == 1 => vec![*x],
                        _ => v
                            .as_ivec()
                            .map_err(|e| not_lowerable("generator bound", e.to_string()))?,
                    };
                    if incl {
                        vec.iter_mut().for_each(|x| *x += 1);
                    }
                    if vec.len() != rank {
                        return Err(not_lowerable("generator bound", "rank mismatch"));
                    }
                    Ok(vec)
                }
            };
            let lower = eval_bound(self, &gen.lower, false, vec![0; rank])?;
            let upper = eval_bound(
                self,
                &gen.upper,
                gen.upper.is_some() && gen.upper_inclusive,
                frame.iter().map(|&d| d as i64).collect(),
            )?;
            let step = eval_bound(self, &gen.step, false, vec![1; rank])?;
            let width = eval_bound(self, &gen.width, false, vec![1; rank])?;
            for d in 0..rank {
                if lower[d] < 0 || upper[d] > frame[d] as i64 {
                    return Err(not_lowerable("generator", "range outside frame"));
                }
                if step[d] < 1 || width[d] < 1 || width[d] > step[d] {
                    return Err(not_lowerable("generator", "invalid step/width"));
                }
            }

            // Bind index variables and lower the body in generator context.
            let saved_env = self.env.clone();
            self.ctx_rank = outer_rank + rank;
            match &gen.var {
                GenVar::Name(n) => {
                    let comps = (0..rank).map(|d| SymExpr::Idx(outer_rank + d)).collect();
                    self.env.insert(n.clone(), LV::Vector(comps));
                }
                GenVar::Components(ns) => {
                    if ns.len() != rank {
                        self.env = saved_env;
                        self.ctx_rank = outer_rank;
                        return Err(not_lowerable("generator", "variable component mismatch"));
                    }
                    for (d, n) in ns.iter().enumerate() {
                        self.env.insert(n.clone(), LV::Scalar(SymExpr::Idx(outer_rank + d)));
                    }
                }
            }
            let cell = (|| {
                for s in &gen.body {
                    match s {
                        Stmt::Assign(LValue::Var(n), e) => {
                            let lv = self.lower_expr(e, Some(n))?;
                            self.env.insert(n.clone(), lv);
                        }
                        Stmt::Assign(LValue::Index(n, ix), e) => {
                            self.lower_tile_write(n, ix, e)?;
                        }
                        other => {
                            return Err(not_lowerable(
                                "generator body",
                                format!("unsupported statement {other:?}"),
                            ))
                        }
                    }
                }
                self.lower_expr(&gen.yield_expr, None)
            })();
            self.env = saved_env;
            self.ctx_rank = outer_rank;
            lowered.push(LoweredGen { lower, upper, step, width, cell: cell? });
        }

        // Convert cells to a uniform nested form and determine the cell shape.
        let mut nested_cells: Vec<NestedW> = Vec::with_capacity(lowered.len());
        for lg in &lowered {
            let nw = self.cell_to_nested(&lg.cell, outer_rank + rank)?;
            nested_cells.push(nw);
        }
        let cell_shape = nested_cells.first().map(|n| n.shape.clone()).unwrap_or_default();
        if nested_cells.iter().any(|n| n.shape != cell_shape) {
            return Err(not_lowerable("with", "generators yield differently-shaped cells"));
        }

        // Assemble the flattened generators.
        let mut total_shape = frame.clone();
        total_shape.extend_from_slice(&cell_shape);
        let mut gens: Vec<FlatGen> = Vec::new();
        for (lg, nw) in lowered.iter().zip(&nested_cells) {
            let extend = |outer: &[i64], inner: &[i64]| {
                let mut v = outer.to_vec();
                v.extend_from_slice(inner);
                v
            };
            // Fill generator when the nested part leaves gaps with a
            // different default than the outer with-loop's.
            let covers = nested_covers_fully(nw);
            if !covers && nw.default != default {
                gens.push(FlatGen {
                    lower: extend(&lg.lower, &vec![0; cell_shape.len()]),
                    upper: extend(
                        &lg.upper,
                        &cell_shape.iter().map(|&d| d as i64).collect::<Vec<_>>(),
                    ),
                    step: extend(&lg.step, &vec![1; cell_shape.len()]),
                    width: extend(&lg.width, &vec![1; cell_shape.len()]),
                    body: SymExpr::Const(nw.default),
                });
            }
            for inner in &nw.gens {
                gens.push(FlatGen {
                    lower: extend(&lg.lower, &inner.lower),
                    upper: extend(&lg.upper, &inner.upper),
                    step: extend(&lg.step, &inner.step),
                    width: extend(&lg.width, &inner.width),
                    body: inner.body.clone().simplify(),
                });
            }
        }

        if outer_rank == 0 {
            // Program level: emit a step.
            let name = name_hint.unwrap_or("with");
            self.tmp += 1;
            let id = self.prog.declare(name.to_string(), total_shape.clone());
            self.prog.steps.push(Step::With {
                target: id,
                with: FlatWith { shape: total_shape, default, modarray_src, generators: gens },
            });
            Ok(LV::Array(id))
        } else {
            // Nested: hand back to the enclosing generator as a tile value.
            if modarray_src.is_some() {
                return Err(not_lowerable("modarray", "nested modarray is unsupported"));
            }
            Ok(LV::Nested(NestedW { shape: total_shape, default, gens, base: outer_rank }))
        }
    }

    /// View a generator's cell value as a nested with-loop over the cell dims.
    fn cell_to_nested(&self, cell: &LV, base: usize) -> Result<NestedW, SacError> {
        match cell {
            LV::Scalar(e) => Ok(NestedW {
                shape: Vec::new(),
                default: 0,
                gens: vec![FlatGen {
                    lower: vec![],
                    upper: vec![],
                    step: vec![],
                    width: vec![],
                    body: e.clone(),
                }],
                base,
            }),
            LV::Known(Value::Int(v)) => Ok(NestedW {
                shape: Vec::new(),
                default: 0,
                gens: vec![FlatGen {
                    lower: vec![],
                    upper: vec![],
                    step: vec![],
                    width: vec![],
                    body: SymExpr::Const(*v),
                }],
                base,
            }),
            LV::Nested(nw) => {
                if nw.base != base {
                    return Err(not_lowerable("tile", "nested tile from a different context"));
                }
                Ok(nw.clone())
            }
            LV::Vector(vs) => Ok(NestedW {
                shape: vec![vs.len()],
                default: 0,
                gens: vs
                    .iter()
                    .enumerate()
                    .map(|(c, e)| FlatGen {
                        lower: vec![c as i64],
                        upper: vec![c as i64 + 1],
                        step: vec![1],
                        width: vec![1],
                        body: e.clone(),
                    })
                    .collect(),
                base,
            }),
            LV::Known(Value::Arr(a)) if a.rank() == 1 => Ok(NestedW {
                shape: vec![a.len()],
                default: 0,
                gens: a
                    .as_slice()
                    .iter()
                    .enumerate()
                    .map(|(c, &v)| FlatGen {
                        lower: vec![c as i64],
                        upper: vec![c as i64 + 1],
                        step: vec![1],
                        width: vec![1],
                        body: SymExpr::Const(v),
                    })
                    .collect(),
                base,
            }),
            LV::Slice { array, prefix } => {
                // Whole-subarray cell: a dense nested copy loop.
                let cell_dims = self.prog.arrays[*array].shape[prefix.len()..].to_vec();
                let mut index = prefix.clone();
                for (d, _) in cell_dims.iter().enumerate() {
                    index.push(SymExpr::Idx(base + d));
                }
                Ok(NestedW {
                    shape: cell_dims.clone(),
                    default: 0,
                    gens: vec![FlatGen {
                        lower: vec![0; cell_dims.len()],
                        upper: cell_dims.iter().map(|&d| d as i64).collect(),
                        step: vec![1; cell_dims.len()],
                        width: vec![1; cell_dims.len()],
                        body: SymExpr::Load { array: *array, index },
                    }],
                    base,
                })
            }
            other => Err(not_lowerable("cell", format!("unsupported cell value {other:?}"))),
        }
    }
}

/// Does the nested with-loop's generator set provably cover its whole shape?
/// (Conservative: only recognises scalar cells and full single-gen covers and
/// per-position partitions.)
fn nested_covers_fully(nw: &NestedW) -> bool {
    if nw.shape.is_empty() {
        return !nw.gens.is_empty();
    }
    let total: u64 = nw.shape.iter().map(|&d| d as u64).product();
    // Upper bound: if the (possibly overlapping) union cannot reach the total
    // count, it certainly does not cover.
    let sum: u64 = nw.gens.iter().map(|g| g.points()).sum();
    if sum < total {
        return false;
    }
    // Exact check by marking (cheap for tile-sized shapes; bail out above 1M).
    if total > 1 << 20 {
        return false;
    }
    let mut seen = vec![false; total as usize];
    let strides: Vec<u64> = {
        let mut s = vec![1u64; nw.shape.len()];
        for d in (0..nw.shape.len().saturating_sub(1)).rev() {
            s[d] = s[d + 1] * nw.shape[d + 1] as u64;
        }
        s
    };
    for g in &nw.gens {
        g.for_each_point(|iv| {
            let off: u64 = iv.iter().zip(&strides).map(|(&x, &s)| x as u64 * s).sum();
            seen[off as usize] = true;
        });
    }
    seen.into_iter().all(|b| b)
}

/// Collect free variable names and assignment-target names of a statement.
fn stmt_vars(s: &Stmt, free: &mut Vec<String>, targets: &mut Vec<String>) {
    match s {
        Stmt::Assign(LValue::Var(n), e) => {
            targets.push(n.clone());
            expr_vars(e, free);
        }
        Stmt::Assign(LValue::Index(n, ix), e) => {
            targets.push(n.clone());
            free.push(n.clone());
            expr_vars(ix, free);
            expr_vars(e, free);
        }
        Stmt::For { var, init, limit, body } => {
            targets.push(var.clone());
            expr_vars(init, free);
            expr_vars(limit, free);
            for s in body {
                stmt_vars(s, free, targets);
            }
        }
        Stmt::Return(e) => expr_vars(e, free),
    }
}

fn expr_vars(e: &Expr, free: &mut Vec<String>) {
    match e {
        Expr::Int(_) => {}
        Expr::Var(n) => free.push(n.clone()),
        Expr::VecLit(es) => es.iter().for_each(|x| expr_vars(x, free)),
        Expr::Neg(x) => expr_vars(x, free),
        Expr::Bin(_, l, r) | Expr::Select(l, r) => {
            expr_vars(l, free);
            expr_vars(r, free);
        }
        Expr::Call(_, args) => args.iter().for_each(|x| expr_vars(x, free)),
        Expr::With(w) => {
            for g in &w.generators {
                for b in [&g.lower, &g.upper, &g.step, &g.width].into_iter().flatten() {
                    expr_vars(b, free);
                }
                for s in &g.body {
                    let mut t = Vec::new();
                    stmt_vars(s, free, &mut t);
                }
                expr_vars(&g.yield_expr, free);
            }
            match &w.op {
                WithOp::Genarray { shape, default } => {
                    expr_vars(shape, free);
                    if let Some(d) = default {
                        expr_vars(d, free);
                    }
                }
                WithOp::Modarray(src) => expr_vars(src, free),
                WithOp::Fold { neutral, .. } => expr_vars(neutral, free),
            }
        }
        Expr::Block(stmts, r) => {
            for s in stmts {
                let mut t = Vec::new();
                stmt_vars(s, free, &mut t);
            }
            expr_vars(r, free);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::Interp;
    use crate::opt::inline::inline_entry;
    use crate::parser::parse_program;
    use mdarray::NdArray;

    /// Lower `main` of `src`, run both the AST interpreter and the flat
    /// program on `inputs`, and require identical results.
    fn check_equivalence(src: &str, arrays: &[NdArray<i64>]) -> FlatProgram {
        let prog = parse_program(src).unwrap();
        crate::types::check_program(&prog).unwrap();
        let entry = prog.fun("main").unwrap();
        let inlined = inline_entry(&prog, entry);
        let descs: Vec<ArgDesc> = arrays
            .iter()
            .enumerate()
            .map(|(i, a)| ArgDesc::Array {
                name: format!("in{i}"),
                shape: a.shape().dims().to_vec(),
            })
            .collect();
        let flat = lower_function(&inlined, &descs).unwrap();

        let wrapped = Program { funs: vec![inlined] };
        let mut interp = Interp::new(&wrapped);
        let args = arrays.iter().map(|a| Value::Arr(a.clone())).collect();
        let expect = interp.call("main", args).unwrap();

        let mut ops = 0;
        let got = flat.run(arrays, &mut ops).unwrap();
        assert_eq!(Value::Arr(got), expect, "flat program diverges from interpreter");
        flat
    }

    #[test]
    fn lowers_identity_with_loop() {
        let src = r#"
int[*] main(int[4,6] a)
{
    out = with { (. <= iv <= .) : a[iv]; } : genarray( shape(a), 0);
    return( out);
}
"#;
        let a = NdArray::from_fn([4usize, 6], |ix| (ix[0] * 6 + ix[1]) as i64);
        let flat = check_equivalence(src, &[a]);
        assert_eq!(flat.steps.len(), 1);
        assert_eq!(flat.generator_count(), 1);
    }

    #[test]
    fn lowers_stepped_generators() {
        let src = r#"
int[*] main(int[4,9] a)
{
    out = with {
        ([0,0] <= iv < [4,9] step [1,3]) : a[iv] * 2;
        ([0,1] <= iv < [4,9] step [1,3]) : 0 - a[iv];
    } : genarray( [4,9], 7);
    return( out);
}
"#;
        let a = NdArray::from_fn([4usize, 9], |ix| (ix[0] * 9 + ix[1]) as i64 + 1);
        let flat = check_equivalence(src, &[a]);
        assert_eq!(flat.generator_count(), 2);
    }

    #[test]
    fn lowers_nested_with_scalarisation() {
        // The input-tiler shape: outer over repetitions, inner builds tiles.
        let src = r#"
int[*] main(int[2,12] a)
{
    out = with {
        (. <= rep <= .) {
            tile = with {
                (. <= pat <= .) : a[[rep[0], (rep[1] * 4 + pat[0]) % 12]];
            } : genarray( [5], 0);
        } : tile;
    } : genarray( [2,3]);
    return( out);
}
"#;
        let a = NdArray::from_fn([2usize, 12], |ix| (ix[0] * 100 + ix[1]) as i64);
        let flat = check_equivalence(src, &[a]);
        // One flat loop over [2,3,5] with one dense generator.
        assert_eq!(flat.steps.len(), 1);
        assert_eq!(flat.generator_count(), 1);
        match &flat.steps[0] {
            Step::With { with, .. } => assert_eq!(with.shape, vec![2, 3, 5]),
            _ => panic!("expected a with step"),
        }
    }

    #[test]
    fn lowers_tile_write_idiom() {
        // The task-function shape: genarray then constant-index writes.
        let src = r#"
int[*] main(int[6] a)
{
    out = with {
        (. <= rep <= .) {
            tile = genarray( [2], 0);
            t = a[[rep[0]]];
            tile[0] = t * 2;
            tile[1] = t + 100;
        } : tile;
    } : genarray( [6]);
    return( out);
}
"#;
        let a = NdArray::from_fn([6usize], |ix| ix[0] as i64);
        let flat = check_equivalence(src, &[a]);
        // Two generators: one per tile position.
        assert_eq!(flat.generator_count(), 2);
    }

    #[test]
    fn lowers_mv_cat_tiler_arithmetic() {
        // Generic tiler arithmetic with constant matrices, symbolic index.
        let src = r#"
int[*] main(int[3,16] f)
{
    origin = [0, 0];
    paving = [[1, 0], [0, 4]];
    fitting = [[0], [1]];
    out = with {
        (. <= rep <= .) {
            tile = with {
                (. <= pat <= .) {
                    off = origin + MV( CAT( paving, fitting), rep ++ pat);
                    iv = off % shape(f);
                    elem = f[iv];
                } : elem;
            } : genarray( [6], 0);
        } : tile;
    } : genarray( [3,4]);
    return( out);
}
"#;
        let f = NdArray::from_fn([3usize, 16], |ix| (ix[0] * 16 + ix[1]) as i64);
        let flat = check_equivalence(src, &[f]);
        assert_eq!(flat.generator_count(), 1);
    }

    #[test]
    fn modarray_with_loop() {
        let src = r#"
int[*] main(int[2,6] zero, int[2,2,3] input)
{
    out = with {
        ([0,0]<=[i,j]<=. step [1,3]):input[[i, j/3, 0]];
        ([0,1]<=[i,j]<=. step [1,3]):input[[i, j/3, 1]];
        ([0,2]<=[i,j]<=. step [1,3]):input[[i, j/3, 2]];
    } : modarray( zero);
    return( out);
}
"#;
        let zero = NdArray::filled([2usize, 6], -5i64);
        let input =
            NdArray::from_fn([2usize, 2, 3], |ix| (ix[0] * 100 + ix[1] * 10 + ix[2]) as i64);
        let flat = check_equivalence(src, &[zero, input]);
        assert_eq!(flat.generator_count(), 3);
        match &flat.steps[0] {
            Step::With { with, .. } => assert!(with.modarray_src.is_some()),
            _ => panic!(),
        }
    }

    #[test]
    fn for_nest_becomes_host_step() {
        // The generic output tiler's scatter loop.
        let src = r#"
int[*] main(int[2,6] out_frame, int[2,6] input)
{
    for( i=0; i< 2; i++) {
        for( j=0; j< 6; j++) {
            out_frame[[i, j]] = input[[i, j]] * 3;
        }
    }
    return( out_frame);
}
"#;
        let out0 = NdArray::filled([2usize, 6], 0i64);
        let input = NdArray::from_fn([2usize, 6], |ix| (ix[0] * 6 + ix[1]) as i64);
        let flat = check_equivalence(src, &[out0, input]);
        assert_eq!(flat.steps.len(), 1);
        assert!(matches!(flat.steps[0], Step::Host { .. }));
    }

    #[test]
    fn mixed_gpu_and_host_steps() {
        let src = r#"
int[*] main(int[8] a)
{
    doubled = with { (. <= iv <= .) : a[iv] * 2; } : genarray( [8], 0);
    out = with { (. <= iv <= .) : 0; } : genarray( [8]);
    for( i=0; i< 8; i++) {
        out[[i]] = doubled[[i]] + 1;
    }
    return( out);
}
"#;
        let a = NdArray::from_fn([8usize], |ix| ix[0] as i64);
        let flat = check_equivalence(src, &[a]);
        assert_eq!(flat.steps.len(), 3); // with, zero-fill with, host
        assert!(matches!(flat.steps[2], Step::Host { .. }));
    }

    #[test]
    fn unlowerable_user_call_reports_cleanly() {
        // A function that cannot be inlined (early return) stays a call and
        // lowering reports NotLowerable.
        let src = r#"
int pick(int x) { for( i=0; i< x; i++) { return( i); } return( 0); }
int[*] main(int[4] a)
{
    out = with { (. <= iv <= .) : pick(a[iv]); } : genarray( [4], 0);
    return( out);
}
"#;
        let prog = parse_program(src).unwrap();
        let inlined = inline_entry(&prog, prog.fun("main").unwrap());
        let err = lower_function(&inlined, &[ArgDesc::Array { name: "a".into(), shape: vec![4] }])
            .unwrap_err();
        assert!(matches!(err, SacError::NotLowerable { .. }));
    }
}

#[cfg(test)]
mod cell_tests {
    use super::*;
    use crate::eval::Interp;
    use crate::opt::inline::inline_entry;
    use crate::parser::parse_program;
    use crate::value::Value;
    use mdarray::NdArray;

    fn check(src: &str, arrays: &[NdArray<i64>]) -> FlatProgram {
        let prog = parse_program(src).unwrap();
        let entry = prog.fun("main").unwrap();
        let inlined = inline_entry(&prog, entry);
        let descs: Vec<ArgDesc> = arrays
            .iter()
            .enumerate()
            .map(|(i, a)| ArgDesc::Array {
                name: format!("in{i}"),
                shape: a.shape().dims().to_vec(),
            })
            .collect();
        let flat = lower_function(&inlined, &descs).unwrap();
        let wrapped = Program { funs: vec![inlined] };
        let mut interp = Interp::new(&wrapped);
        let args = arrays.iter().map(|a| Value::Arr(a.clone())).collect();
        let expect = interp.call("main", args).unwrap();
        let got = flat.run(arrays, &mut 0).unwrap();
        assert_eq!(Value::Arr(got), expect);
        flat
    }

    #[test]
    fn subarray_cells_lower_as_copy_loops() {
        // Yielding a whole row sub-array: cell = Slice, handled by the dense
        // nested copy generator.
        let src = r#"
int[*] main(int[3,5] a)
{
    out = with { (. <= rep <= .) : a[rep]; } : genarray( [3]);
    return( out);
}
"#;
        let a = NdArray::from_fn([3usize, 5], |ix| (ix[0] * 5 + ix[1]) as i64);
        let flat = check(src, &[a]);
        match &flat.steps[0] {
            Step::With { with, .. } => {
                assert_eq!(with.shape, vec![3, 5]);
                assert_eq!(with.generators.len(), 1);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn vector_cells_become_per_component_generators() {
        let src = r#"
int[*] main(int[4] a)
{
    out = with { (. <= rep <= .) : [a[rep], a[rep] * 10]; } : genarray( [4]);
    return( out);
}
"#;
        let a = NdArray::from_fn([4usize], |ix| ix[0] as i64 + 1);
        let flat = check(src, &[a]);
        assert_eq!(flat.generator_count(), 2);
    }

    #[test]
    fn constant_scalar_cells() {
        let src = r#"
int[*] main(int[2,2] a)
{
    out = with {
        ([0,0] <= iv < [1,2]) : 5;
        ([1,0] <= iv < [2,2]) : a[iv];
    } : genarray( [2,2], 9);
    return( out);
}
"#;
        let a = NdArray::from_fn([2usize, 2], |ix| (ix[0] * 2 + ix[1]) as i64);
        check(src, &[a]);
    }

    #[test]
    fn nonuniform_known_tile_promotes_with_per_element_generators() {
        // `tile` starts as a non-uniform literal and is then partially
        // overwritten — exercises the Known-array promotion path.
        let src = r#"
int[*] main(int[3] a)
{
    out = with {
        (. <= rep <= .) {
            tile = [7, 8];
            tile[1] = a[[rep[0]]];
        } : tile;
    } : genarray( [3]);
    return( out);
}
"#;
        let a = NdArray::from_fn([3usize], |ix| 100 + ix[0] as i64);
        let flat = check(src, &[a]);
        match &flat.steps[0] {
            Step::With { with, .. } => assert_eq!(with.shape, vec![3, 2]),
            _ => panic!(),
        }
    }
}
