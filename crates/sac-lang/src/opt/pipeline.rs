//! The optimisation driver: parse → check → inline → fold constants → lower
//! → WLF → modulo resolution → DCE.

use crate::ast::{FunDef, Program};
use crate::opt::constfold::fold_function;
use crate::opt::dce::eliminate_dead_steps;
use crate::opt::inline::inline_entry;
use crate::opt::lower::{lower_function, ArgDesc};
use crate::opt::split::resolve_mods;
use crate::opt::wlf::{fold_program, FoldStats};
use crate::wir::{FlatProgram, Step};
use crate::SacError;

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct OptConfig {
    /// Run WITH-loop folding (the paper's WLF). Disabling it is the
    /// ablation knob for `benches/ablation_wlf.rs`.
    pub with_loop_folding: bool,
    /// Split generators to statically resolve wrap-around `%` addressing.
    pub resolve_modulo: bool,
}

impl Default for OptConfig {
    fn default() -> Self {
        OptConfig { with_loop_folding: true, resolve_modulo: true }
    }
}

/// What the optimiser did (for reports and EXPERIMENTS.md).
#[derive(Debug, Clone, Default)]
pub struct OptReport {
    /// WLF statistics.
    pub fold: FoldStats,
    /// Steps removed by DCE.
    pub dead_steps: usize,
    /// Generators before modulo-resolution splitting.
    pub generators_before_split: usize,
    /// Final generator count (= kernel count for the CUDA backend).
    pub generators_after_split: usize,
    /// Number of host (non-GPU) steps in the final program.
    pub host_steps: usize,
}

/// Run the full high-level optimisation pipeline on `entry` of `prog` and
/// lower to a flat program.
pub fn optimize(
    prog: &Program,
    entry: &str,
    args: &[ArgDesc],
    cfg: &OptConfig,
) -> Result<(FlatProgram, OptReport), SacError> {
    crate::types::check_program(prog)?;
    let entry_fun = prog
        .fun(entry)
        .ok_or_else(|| SacError::Type { msg: format!("unknown entry function '{entry}'") })?;
    let inlined = inline_entry(prog, entry_fun);
    let folded: FunDef = fold_function(&inlined);
    let mut flat = lower_function(&folded, args)?;

    let mut report = OptReport::default();
    if cfg.with_loop_folding {
        report.fold = fold_program(&mut flat);
    }
    report.dead_steps = eliminate_dead_steps(&mut flat);
    report.generators_before_split = flat.generator_count();
    if cfg.resolve_modulo {
        for step in &mut flat.steps {
            if let Step::With { with, .. } = step {
                let gens = std::mem::take(&mut with.generators);
                for g in gens {
                    with.generators.extend(resolve_mods(g));
                }
            }
        }
    }
    report.generators_after_split = flat.generator_count();
    report.host_steps = flat.steps.iter().filter(|s| matches!(s, Step::Host { .. })).count();
    Ok((flat, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::Interp;
    use crate::parser::parse_program;
    use crate::value::Value;
    use mdarray::NdArray;

    /// A miniature 3-stage downscaler-like pipeline: gather (windowed sums),
    /// transform, scatter — enough to exercise fold + split end to end.
    const MINI: &str = r#"
int[*] gather(int[2,16] f)
{
    out = with {
        (. <= rep <= .) {
            tile = with {
                (. <= pat <= .) : f[[rep[0], (rep[1] * 4 + pat[0]) % 16]];
            } : genarray( [6], 0);
        } : tile;
    } : genarray( [2,4]);
    return( out);
}

int[*] transform(int[2,4,6] input)
{
    out = with {
        (. <= rep <= .) {
            tile = genarray( [2], 0);
            t0 = input[rep][0] + input[rep][1] + input[rep][2];
            t1 = input[rep][3] + input[rep][4] + input[rep][5];
            tile[0] = t0 / 3 - t0 % 3;
            tile[1] = t1 / 3 - t1 % 3;
        } : tile;
    } : genarray( [2,4]);
    return( out);
}

int[*] scatter(int[2,8] output, int[2,4,2] input)
{
    output = with {
        ([0,0]<=[i,j]<=. step [1,2]):input[[i, j/2, 0]];
        ([0,1]<=[i,j]<=. step [1,2]):input[[i, j/2, 1]];
    } : modarray( output);
    return( output);
}

int[*] main(int[2,16] frame)
{
    inter1 = gather(frame);
    inter2 = transform(inter1);
    zero = with { (. <= iv <= .) : 0; } : genarray( [2,8]);
    out = scatter(zero, inter2);
    return( out);
}
"#;

    fn reference_result(frame: &NdArray<i64>) -> Value {
        let prog = parse_program(MINI).unwrap();
        let mut i = Interp::new(&prog);
        i.call("main", vec![Value::Arr(frame.clone())]).unwrap()
    }

    #[test]
    fn full_pipeline_folds_to_single_loop() {
        let prog = parse_program(MINI).unwrap();
        let frame = NdArray::from_fn([2usize, 16], |ix| (ix[0] * 31 + ix[1] * 7) as i64 % 50);
        let args = [ArgDesc::Array { name: "frame".into(), shape: vec![2, 16] }];

        let (flat, report) = optimize(&prog, "main", &args, &OptConfig::default()).unwrap();
        // Everything fuses into one with-loop step (the zero seed is elided).
        assert_eq!(flat.steps.len(), 1, "{flat}");
        assert!(report.fold.folds >= 2, "{report:?}");
        assert_eq!(report.host_steps, 0);

        // Bit-exact vs the AST interpreter.
        let expect = reference_result(&frame);
        let got = flat.run(&[frame], &mut 0).unwrap();
        assert_eq!(Value::Arr(got), expect);
    }

    #[test]
    fn folding_can_be_disabled() {
        let prog = parse_program(MINI).unwrap();
        let args = [ArgDesc::Array { name: "frame".into(), shape: vec![2, 16] }];
        let cfg = OptConfig { with_loop_folding: false, resolve_modulo: false };
        let (flat, report) = optimize(&prog, "main", &args, &cfg).unwrap();
        assert_eq!(report.fold.folds, 0);
        assert!(flat.steps.len() >= 3, "{flat}");
        // Still correct.
        let frame = NdArray::from_fn([2usize, 16], |ix| (ix[0] + ix[1]) as i64);
        let expect = reference_result(&frame);
        let got = flat.run(&[frame], &mut 0).unwrap();
        assert_eq!(Value::Arr(got), expect);
    }

    #[test]
    fn boundary_wrap_splits_generators() {
        // Window 4*rep + pat with pat up to 6 wraps at rep=3 (12+5=17 > 15):
        // after folding, the wrap tile splits off extra generators.
        let prog = parse_program(MINI).unwrap();
        let args = [ArgDesc::Array { name: "frame".into(), shape: vec![2, 16] }];
        let (_, report) = optimize(&prog, "main", &args, &OptConfig::default()).unwrap();
        assert!(report.generators_after_split > report.generators_before_split, "{report:?}");
    }
}
