//! Function inlining.
//!
//! Calls to user functions are replaced by [`Expr::Block`]s that bind the
//! (renamed) parameters and splice in the (renamed) body. Inlining is a
//! prerequisite for WITH-loop folding across the paper's three-function
//! pipeline (`input_tiler` → `task` → output tiler) and for the CUDA
//! backend's rule that eligible WITH-loops contain no function invocations.
//!
//! A call is inlined only when the callee's body is a straight-line statement
//! list whose final statement is its only `return`. Calls that do not qualify
//! are left in place (and will surface later as not-lowerable, which is the
//! honest failure mode).

use crate::ast::*;
use crate::builtins::is_builtin;
use std::collections::HashSet;

/// Maximum inlining depth (guards against recursion).
const MAX_DEPTH: usize = 32;

/// Inline all user-function calls reachable from `entry`, returning a copy of
/// the entry function with calls expanded.
pub fn inline_entry(prog: &Program, entry: &FunDef) -> FunDef {
    let mut counter = 0usize;
    let mut f = entry.clone();
    f.body = inline_stmts(prog, &f.body, &mut counter, 0);
    f
}

fn inline_stmts(prog: &Program, stmts: &[Stmt], counter: &mut usize, depth: usize) -> Vec<Stmt> {
    stmts
        .iter()
        .map(|s| match s {
            Stmt::Assign(lv, e) => Stmt::Assign(lv.clone(), inline_expr(prog, e, counter, depth)),
            Stmt::For { var, init, limit, body } => Stmt::For {
                var: var.clone(),
                init: inline_expr(prog, init, counter, depth),
                limit: inline_expr(prog, limit, counter, depth),
                body: inline_stmts(prog, body, counter, depth),
            },
            Stmt::Return(e) => Stmt::Return(inline_expr(prog, e, counter, depth)),
        })
        .collect()
}

fn inline_expr(prog: &Program, e: &Expr, counter: &mut usize, depth: usize) -> Expr {
    match e {
        Expr::Int(_) | Expr::Var(_) => e.clone(),
        Expr::VecLit(es) => {
            Expr::VecLit(es.iter().map(|x| inline_expr(prog, x, counter, depth)).collect())
        }
        Expr::Neg(x) => Expr::Neg(Box::new(inline_expr(prog, x, counter, depth))),
        Expr::Bin(op, l, r) => Expr::Bin(
            *op,
            Box::new(inline_expr(prog, l, counter, depth)),
            Box::new(inline_expr(prog, r, counter, depth)),
        ),
        Expr::Select(a, ix) => Expr::Select(
            Box::new(inline_expr(prog, a, counter, depth)),
            Box::new(inline_expr(prog, ix, counter, depth)),
        ),
        Expr::With(w) => {
            let generators = w
                .generators
                .iter()
                .map(|g| Generator {
                    lower: g.lower.as_ref().map(|x| inline_expr(prog, x, counter, depth)),
                    upper: g.upper.as_ref().map(|x| inline_expr(prog, x, counter, depth)),
                    upper_inclusive: g.upper_inclusive,
                    step: g.step.as_ref().map(|x| inline_expr(prog, x, counter, depth)),
                    width: g.width.as_ref().map(|x| inline_expr(prog, x, counter, depth)),
                    var: g.var.clone(),
                    body: inline_stmts(prog, &g.body, counter, depth),
                    yield_expr: inline_expr(prog, &g.yield_expr, counter, depth),
                })
                .collect();
            let op = match &w.op {
                WithOp::Genarray { shape, default } => WithOp::Genarray {
                    shape: inline_expr(prog, shape, counter, depth),
                    default: default.as_ref().map(|d| inline_expr(prog, d, counter, depth)),
                },
                WithOp::Modarray(src) => WithOp::Modarray(inline_expr(prog, src, counter, depth)),
                WithOp::Fold { fun, neutral } => WithOp::Fold {
                    fun: fun.clone(),
                    neutral: inline_expr(prog, neutral, counter, depth),
                },
            };
            Expr::With(Box::new(WithLoop { generators, op }))
        }
        Expr::Block(stmts, result) => Expr::Block(
            inline_stmts(prog, stmts, counter, depth),
            Box::new(inline_expr(prog, result, counter, depth)),
        ),
        Expr::Call(name, args) => {
            let args: Vec<Expr> =
                args.iter().map(|a| inline_expr(prog, a, counter, depth)).collect();
            if is_builtin(name) || depth >= MAX_DEPTH {
                return Expr::Call(name.clone(), args);
            }
            let Some(callee) = prog.fun(name) else {
                return Expr::Call(name.clone(), args);
            };
            let Some((body_stmts, ret_expr)) = splittable_body(&callee.body) else {
                return Expr::Call(name.clone(), args);
            };

            // Rename callee locals to fresh names.
            *counter += 1;
            let tag = *counter;
            let mut locals: HashSet<String> =
                callee.params.iter().map(|(_, n)| n.clone()).collect();
            collect_locals(&callee.body, &mut locals);
            let rn = |n: &str| format!("__inl{tag}_{n}");

            let mut stmts: Vec<Stmt> = Vec::with_capacity(callee.params.len() + body_stmts.len());
            for ((_, pname), arg) in callee.params.iter().zip(args) {
                stmts.push(Stmt::Assign(LValue::Var(rn(pname)), arg));
            }
            for s in body_stmts {
                stmts.push(rename_stmt(s, &locals, &rn));
            }
            let result = rename_expr(ret_expr, &locals, &rn);
            // Recursively inline within the spliced body.
            let stmts = inline_stmts(prog, &stmts, counter, depth + 1);
            let result = inline_expr(prog, &result, counter, depth + 1);
            Expr::Block(stmts, Box::new(result))
        }
    }
}

/// A body qualifies when its final statement is its only `return`.
fn splittable_body(body: &[Stmt]) -> Option<(&[Stmt], &Expr)> {
    let (last, init) = body.split_last()?;
    let Stmt::Return(e) = last else { return None };
    if init.iter().any(contains_return) {
        return None;
    }
    Some((init, e))
}

fn contains_return(s: &Stmt) -> bool {
    match s {
        Stmt::Return(_) => true,
        Stmt::For { body, .. } => body.iter().any(contains_return),
        Stmt::Assign(..) => false,
    }
}

/// Collect every name assigned or bound anywhere in `stmts`.
fn collect_locals(stmts: &[Stmt], out: &mut HashSet<String>) {
    for s in stmts {
        match s {
            Stmt::Assign(LValue::Var(n), e) | Stmt::Assign(LValue::Index(n, _), e) => {
                out.insert(n.clone());
                collect_locals_expr(e, out);
            }
            Stmt::For { var, body, init, limit } => {
                out.insert(var.clone());
                collect_locals_expr(init, out);
                collect_locals_expr(limit, out);
                collect_locals(body, out);
            }
            Stmt::Return(e) => collect_locals_expr(e, out),
        }
    }
}

fn collect_locals_expr(e: &Expr, out: &mut HashSet<String>) {
    match e {
        Expr::With(w) => {
            for g in &w.generators {
                match &g.var {
                    GenVar::Name(n) => {
                        out.insert(n.clone());
                    }
                    GenVar::Components(ns) => out.extend(ns.iter().cloned()),
                }
                collect_locals(&g.body, out);
                collect_locals_expr(&g.yield_expr, out);
            }
        }
        Expr::Block(stmts, r) => {
            collect_locals(stmts, out);
            collect_locals_expr(r, out);
        }
        Expr::Bin(_, l, r) | Expr::Select(l, r) => {
            collect_locals_expr(l, out);
            collect_locals_expr(r, out);
        }
        Expr::Neg(x) => collect_locals_expr(x, out),
        Expr::VecLit(es) => es.iter().for_each(|x| collect_locals_expr(x, out)),
        Expr::Call(_, args) => args.iter().for_each(|x| collect_locals_expr(x, out)),
        Expr::Int(_) | Expr::Var(_) => {}
    }
}

fn rename_stmt(s: &Stmt, locals: &HashSet<String>, rn: &impl Fn(&str) -> String) -> Stmt {
    let fix = |n: &String| if locals.contains(n) { rn(n) } else { n.clone() };
    match s {
        Stmt::Assign(LValue::Var(n), e) => {
            Stmt::Assign(LValue::Var(fix(n)), rename_expr(e, locals, rn))
        }
        Stmt::Assign(LValue::Index(n, ix), e) => Stmt::Assign(
            LValue::Index(fix(n), rename_expr(ix, locals, rn)),
            rename_expr(e, locals, rn),
        ),
        Stmt::For { var, init, limit, body } => Stmt::For {
            var: fix(var),
            init: rename_expr(init, locals, rn),
            limit: rename_expr(limit, locals, rn),
            body: body.iter().map(|s| rename_stmt(s, locals, rn)).collect(),
        },
        Stmt::Return(e) => Stmt::Return(rename_expr(e, locals, rn)),
    }
}

fn rename_expr(e: &Expr, locals: &HashSet<String>, rn: &impl Fn(&str) -> String) -> Expr {
    match e {
        Expr::Int(_) => e.clone(),
        Expr::Var(n) => {
            if locals.contains(n) {
                Expr::Var(rn(n))
            } else {
                e.clone()
            }
        }
        Expr::VecLit(es) => Expr::VecLit(es.iter().map(|x| rename_expr(x, locals, rn)).collect()),
        Expr::Neg(x) => Expr::Neg(Box::new(rename_expr(x, locals, rn))),
        Expr::Bin(op, l, r) => Expr::Bin(
            *op,
            Box::new(rename_expr(l, locals, rn)),
            Box::new(rename_expr(r, locals, rn)),
        ),
        Expr::Call(name, args) => {
            Expr::Call(name.clone(), args.iter().map(|x| rename_expr(x, locals, rn)).collect())
        }
        Expr::Select(a, ix) => Expr::Select(
            Box::new(rename_expr(a, locals, rn)),
            Box::new(rename_expr(ix, locals, rn)),
        ),
        Expr::With(w) => {
            let generators = w
                .generators
                .iter()
                .map(|g| Generator {
                    lower: g.lower.as_ref().map(|x| rename_expr(x, locals, rn)),
                    upper: g.upper.as_ref().map(|x| rename_expr(x, locals, rn)),
                    upper_inclusive: g.upper_inclusive,
                    step: g.step.as_ref().map(|x| rename_expr(x, locals, rn)),
                    width: g.width.as_ref().map(|x| rename_expr(x, locals, rn)),
                    var: match &g.var {
                        GenVar::Name(n) => {
                            GenVar::Name(if locals.contains(n) { rn(n) } else { n.clone() })
                        }
                        GenVar::Components(ns) => GenVar::Components(
                            ns.iter()
                                .map(|n| if locals.contains(n) { rn(n) } else { n.clone() })
                                .collect(),
                        ),
                    },
                    body: g.body.iter().map(|s| rename_stmt(s, locals, rn)).collect(),
                    yield_expr: rename_expr(&g.yield_expr, locals, rn),
                })
                .collect();
            let op = match &w.op {
                WithOp::Genarray { shape, default } => WithOp::Genarray {
                    shape: rename_expr(shape, locals, rn),
                    default: default.as_ref().map(|d| rename_expr(d, locals, rn)),
                },
                WithOp::Modarray(src) => WithOp::Modarray(rename_expr(src, locals, rn)),
                WithOp::Fold { fun, neutral } => {
                    WithOp::Fold { fun: fun.clone(), neutral: rename_expr(neutral, locals, rn) }
                }
            };
            Expr::With(Box::new(WithLoop { generators, op }))
        }
        Expr::Block(stmts, r) => Expr::Block(
            stmts.iter().map(|s| rename_stmt(s, locals, rn)).collect(),
            Box::new(rename_expr(r, locals, rn)),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::Interp;
    use crate::parser::parse_program;
    use crate::value::Value;

    fn has_user_call(prog: &Program, f: &FunDef) -> bool {
        fn walk_e(prog: &Program, e: &Expr) -> bool {
            match e {
                Expr::Call(n, args) => {
                    prog.fun(n).is_some() || args.iter().any(|a| walk_e(prog, a))
                }
                Expr::Bin(_, l, r) | Expr::Select(l, r) => walk_e(prog, l) || walk_e(prog, r),
                Expr::Neg(x) => walk_e(prog, x),
                Expr::VecLit(es) => es.iter().any(|x| walk_e(prog, x)),
                Expr::With(w) => w
                    .generators
                    .iter()
                    .any(|g| g.body.iter().any(|s| walk_s(prog, s)) || walk_e(prog, &g.yield_expr)),
                Expr::Block(stmts, r) => stmts.iter().any(|s| walk_s(prog, s)) || walk_e(prog, r),
                _ => false,
            }
        }
        fn walk_s(prog: &Program, s: &Stmt) -> bool {
            match s {
                Stmt::Assign(_, e) | Stmt::Return(e) => walk_e(prog, e),
                Stmt::For { init, limit, body, .. } => {
                    walk_e(prog, init)
                        || walk_e(prog, limit)
                        || body.iter().any(|s| walk_s(prog, s))
                }
            }
        }
        f.body.iter().any(|s| walk_s(prog, s))
    }

    #[test]
    fn inlines_simple_call_preserving_semantics() {
        let src = r#"
int add3(int x) { y = x + 3; return( y); }
int main(int a) { b = add3(a) * add3(a + 1); return( b); }
"#;
        let prog = parse_program(src).unwrap();
        let entry = prog.fun("main").unwrap();
        let inlined = inline_entry(&prog, entry);
        assert!(!has_user_call(&prog, &inlined), "calls remain: {inlined:?}");

        // Semantics preserved.
        let wrapped = Program { funs: vec![inlined] };
        let mut i1 = Interp::new(&prog);
        let mut i2 = Interp::new(&wrapped);
        let v1 = i1.call("main", vec![Value::Int(7)]).unwrap();
        let v2 = i2.call("main", vec![Value::Int(7)]).unwrap();
        assert_eq!(v1, v2);
        assert_eq!(v1, Value::Int(10 * 11));
    }

    #[test]
    fn renames_avoid_capture() {
        // Callee local `y` must not clobber caller `y`.
        let src = r#"
int f(int x) { y = x * 10; return( y); }
int main() { y = 1; z = f(2); return( y + z); }
"#;
        let prog = parse_program(src).unwrap();
        let inlined = inline_entry(&prog, prog.fun("main").unwrap());
        let wrapped = Program { funs: vec![inlined] };
        let mut i = Interp::new(&wrapped);
        assert_eq!(i.call("main", vec![]).unwrap(), Value::Int(21));
    }

    #[test]
    fn nested_calls_inline_transitively() {
        let src = r#"
int g(int x) { return( x + 1); }
int f(int x) { return( g(x) * 2); }
int main(int a) { return( f(a)); }
"#;
        let prog = parse_program(src).unwrap();
        let inlined = inline_entry(&prog, prog.fun("main").unwrap());
        assert!(!has_user_call(&prog, &inlined));
        let wrapped = Program { funs: vec![inlined] };
        let mut i = Interp::new(&wrapped);
        assert_eq!(i.call("main", vec![Value::Int(5)]).unwrap(), Value::Int(12));
    }

    #[test]
    fn early_return_bodies_are_not_inlined() {
        let src = r#"
int f(int x) { for( i=0; i< x; i++) { return( i); } return( 0); }
int main(int a) { return( f(a)); }
"#;
        let prog = parse_program(src).unwrap();
        let inlined = inline_entry(&prog, prog.fun("main").unwrap());
        // The call must remain (and still evaluate correctly).
        assert!(has_user_call(&prog, &inlined));
    }

    #[test]
    fn inlines_inside_with_loops() {
        let src = r#"
int double(int x) { return( x * 2); }
int[*] main(int[4] a)
{
    out = with { (. <= iv <= .) : double(a[iv]); } : genarray( shape(a), 0);
    return( out);
}
"#;
        let prog = parse_program(src).unwrap();
        let inlined = inline_entry(&prog, prog.fun("main").unwrap());
        assert!(!has_user_call(&prog, &inlined));
        let wrapped = Program { funs: vec![inlined] };
        let mut i = Interp::new(&wrapped);
        let a = Value::Arr(mdarray::NdArray::from_vec([4usize], vec![1, 2, 3, 4]).unwrap());
        let v = i.call("main", vec![a]).unwrap();
        assert_eq!(v.as_array().unwrap().as_slice(), &[2, 4, 6, 8]);
    }
}
