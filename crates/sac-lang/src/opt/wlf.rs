//! WITH-loop folding (WLF).
//!
//! The paper (§VII, citing Scholz's original WLF work) describes the
//! optimisation as: "identifies consecutive WITH-loops with Use-Def
//! relationship and fuses them aggressively. This renders allocation of
//! intermediate arrays in memory unnecessary and, more importantly, avoids
//! expensive data copy and enables better data reuse."
//!
//! On the flat WIR this becomes: when array `A` is produced by one `With`
//! step and consumed by exactly one later `With` step, replace every
//! `A[e…]` load in the consumer by the producing generator's body with the
//! index expressions substituted. Because a producer has several generators
//! (each covering part of `A`), a consumer generator may need to be *split*
//! until each piece's accesses land in exactly one producer generator — this
//! splitting, plus the wrap-around modulo splitting that follows
//! ([`crate::opt::split::resolve_mods`]), is what turns the downscaler's
//! three folded loops into the paper's 5 (horizontal) / 7 (vertical)
//! generators.

use crate::opt::split::{split_by_runs, MAX_PIECES};
use crate::opt::sym::{congruence, interval};
use crate::wir::{FlatGen, FlatProgram, FlatWith, HostBinding, Step, SymExpr};

/// Outcome counters from a folding run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FoldStats {
    /// Producer → consumer fusions performed.
    pub folds: usize,
    /// Generators added by producer-region splitting.
    pub splits: usize,
}

/// Fold until fixpoint. Returns statistics.
///
/// Candidates that fail to fold (e.g. fusing across a filter boundary would
/// fragment generators beyond the split budget) are remembered and skipped,
/// so one unprofitable pair does not stop profitable folds elsewhere.
pub fn fold_program(p: &mut FlatProgram) -> FoldStats {
    let mut stats = FoldStats::default();
    let mut rejected: Vec<(usize, usize)> = Vec::new(); // (producer target, consumer target)
    while let Some((prod_idx, cons_idx)) = find_candidate(p, &rejected) {
        let key = (step_target(&p.steps[prod_idx]), step_target(&p.steps[cons_idx]));
        match try_fold(p, prod_idx, cons_idx) {
            Some(splits) => {
                stats.folds += 1;
                stats.splits += splits;
            }
            None => rejected.push(key),
        }
    }
    elide_covered_modarray(p);
    stats
}

fn step_target(s: &Step) -> usize {
    match s {
        Step::With { target, .. } | Step::Host { target, .. } => *target,
    }
}

/// Find a producer With step whose target is consumed by exactly one later
/// With step (and nowhere else), skipping rejected pairs.
fn find_candidate(p: &FlatProgram, rejected: &[(usize, usize)]) -> Option<(usize, usize)> {
    'outer: for (i, step) in p.steps.iter().enumerate() {
        let Step::With { target, .. } = step else { continue };
        if p.result == *target || p.inputs.contains(target) {
            continue;
        }
        let mut consumer: Option<usize> = None;
        let mut load_count = 0usize;
        for (j, other) in p.steps.iter().enumerate() {
            if i == j {
                continue;
            }
            match other {
                Step::With { with, .. } => {
                    if with.modarray_src == Some(*target) {
                        continue 'outer; // folding through modarray seeds is not supported
                    }
                    let mut loads = Vec::new();
                    for g in &with.generators {
                        g.body.loads(&mut loads);
                    }
                    let uses = loads.iter().filter(|&&a| a == *target).count();
                    if uses > 0 {
                        if consumer.is_some() && consumer != Some(j) {
                            continue 'outer;
                        }
                        if j < i {
                            continue 'outer;
                        }
                        consumer = Some(j);
                        load_count += uses;
                    }
                }
                Step::Host { bindings, .. } => {
                    if bindings.iter().any(|b| matches!(b, HostBinding::Array(a) if a == target)) {
                        continue 'outer;
                    }
                }
            }
        }
        if let Some(j) = consumer {
            if load_count > 0 && !rejected.contains(&(*target, step_target(&p.steps[j]))) {
                return Some((i, j));
            }
        }
    }
    None
}

/// Attempt to fold producer step `pi` into consumer step `ci`.
/// Returns the number of extra generators created, or `None` on failure
/// (in which case the program is left unchanged).
fn try_fold(p: &mut FlatProgram, pi: usize, ci: usize) -> Option<usize> {
    let (producer_target, producer) = match &p.steps[pi] {
        Step::With { target, with } => (*target, with.clone()),
        _ => return None,
    };
    let consumer = match &p.steps[ci] {
        Step::With { with, .. } => with.clone(),
        _ => return None,
    };

    let mut new_gens: Vec<FlatGen> = Vec::new();
    let before: usize = consumer.generators.len();
    for g in consumer.generators {
        let pieces = fold_generator(g, producer_target, &producer, 8)?;
        new_gens.extend(pieces);
        if new_gens.len() > MAX_PIECES * 4 {
            return None;
        }
    }
    let splits = new_gens.len().saturating_sub(before);

    // Commit: rewrite the consumer and delete the producer step.
    if let Step::With { with, .. } = &mut p.steps[ci] {
        with.generators = new_gens;
    }
    p.steps.remove(pi);
    Some(splits)
}

/// Fold all loads of `target` out of one generator, splitting as needed.
fn fold_generator(
    mut g: FlatGen,
    target: usize,
    producer: &FlatWith,
    depth: usize,
) -> Option<Vec<FlatGen>> {
    for _ in 0..64 {
        let Some(img) = first_load_of(&g.body, target) else {
            return Some(vec![g]);
        };
        match choose_producer_gen(&img, &g, producer) {
            Choice::Gen(k) => {
                let replacement = producer.generators[k].body.subst_idx(&img).simplify();
                g.body = replace_first_load(&g.body, target, &replacement).0;
            }
            Choice::Default => {
                let replacement = match producer.modarray_src {
                    Some(src) => SymExpr::Load { array: src, index: img.clone() },
                    None => SymExpr::Const(producer.default),
                };
                g.body = replace_first_load(&g.body, target, &replacement).0;
            }
            Choice::Ambiguous => {
                if depth == 0 {
                    return None;
                }
                let pieces = split_by_runs(&g, |pinned| {
                    match choose_producer_gen(&img, pinned, producer) {
                        Choice::Gen(k) => k as i64,
                        Choice::Default => -1,
                        Choice::Ambiguous => -2,
                    }
                })?;
                let mut out = Vec::new();
                for piece in pieces {
                    out.extend(fold_generator(piece, target, producer, depth - 1)?);
                    if out.len() > MAX_PIECES {
                        return None;
                    }
                }
                return Some(out);
            }
        }
    }
    None // did not converge
}

/// Which producer generator defines `A[img]` for every point of `g`?
enum Choice {
    /// A unique generator (index into the producer's generator list).
    Gen(usize),
    /// No generator covers: the default (or modarray source) value applies.
    Default,
    /// Mixed coverage: the consumer must be split.
    Ambiguous,
}

fn choose_producer_gen(img: &[SymExpr], g: &FlatGen, producer: &FlatWith) -> Choice {
    // Later generators shadow earlier ones, so scan from the end.
    for (k, pg) in producer.generators.iter().enumerate().rev() {
        match membership(img, g, pg) {
            Tri::Always => return Choice::Gen(k),
            Tri::Never => continue,
            Tri::Sometimes => return Choice::Ambiguous,
        }
    }
    Choice::Default
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tri {
    Always,
    Never,
    Sometimes,
}

/// Is the image point `img` inside producer generator `pg`'s region, for all
/// lattice points of the consumer generator `g`?
fn membership(img: &[SymExpr], g: &FlatGen, pg: &FlatGen) -> Tri {
    debug_assert_eq!(img.len(), pg.rank());
    let mut all_always = true;
    for (d, img_d) in img.iter().enumerate() {
        let (l, u, s, w) = (pg.lower[d], pg.upper[d], pg.step[d], pg.width[d]);
        if l >= u {
            return Tri::Never;
        }
        let last_block = l + ((u - 1 - l) / s) * s;
        let hi = (last_block + w - 1).min(u - 1);

        // Interval containment in [lower, last] — checked independently of
        // the phase test so a phase refutation still yields Never even when
        // the interval is inconclusive.
        let mut dim_always = true;
        match interval(img_d, g) {
            Some(iv) if iv.disjoint(l, hi) => return Tri::Never,
            Some(iv) if iv.within(l, hi) => {}
            _ => dim_always = false,
        }
        // Lattice-phase containment.
        if s > 1 {
            if w == 1 {
                let c = congruence(img_d, g);
                if c.refutes(s, l) {
                    return Tri::Never;
                }
                if !c.implies(s, l) {
                    dim_always = false;
                }
            } else if w < s {
                // Width strips: only provable for constants.
                match interval(img_d, g) {
                    Some(iv) if iv.lo == iv.hi => {
                        if (iv.lo - l).rem_euclid(s) >= w {
                            return Tri::Never;
                        }
                    }
                    _ => dim_always = false,
                }
            }
        }
        all_always &= dim_always;
    }
    if all_always {
        Tri::Always
    } else {
        Tri::Sometimes
    }
}

/// First load of `target` in DFS order; returns its index expressions.
fn first_load_of(e: &SymExpr, target: usize) -> Option<Vec<SymExpr>> {
    match e {
        SymExpr::Const(_) | SymExpr::Idx(_) => None,
        SymExpr::Bin(_, l, r) => first_load_of(l, target).or_else(|| first_load_of(r, target)),
        SymExpr::Load { array, index } => {
            for ix in index {
                if let Some(found) = first_load_of(ix, target) {
                    return Some(found);
                }
            }
            if *array == target {
                Some(index.clone())
            } else {
                None
            }
        }
    }
}

/// Replace the first (same DFS order as [`first_load_of`]) load of `target`.
fn replace_first_load(e: &SymExpr, target: usize, replacement: &SymExpr) -> (SymExpr, bool) {
    match e {
        SymExpr::Const(_) | SymExpr::Idx(_) => (e.clone(), false),
        SymExpr::Bin(op, l, r) => {
            let (l2, done) = replace_first_load(l, target, replacement);
            if done {
                return (SymExpr::bin(*op, l2, (**r).clone()), true);
            }
            let (r2, done) = replace_first_load(r, target, replacement);
            (SymExpr::bin(*op, l2, r2), done)
        }
        SymExpr::Load { array, index } => {
            let mut new_index = Vec::with_capacity(index.len());
            let mut replaced = false;
            for ix in index {
                if replaced {
                    new_index.push(ix.clone());
                } else {
                    let (ix2, done) = replace_first_load(ix, target, replacement);
                    new_index.push(ix2);
                    replaced = done;
                }
            }
            if replaced {
                return (SymExpr::Load { array: *array, index: new_index }, true);
            }
            if *array == target {
                (replacement.clone(), true)
            } else {
                (SymExpr::Load { array: *array, index: new_index }, false)
            }
        }
    }
}

/// Turn `modarray(src)` loops whose generators cover the whole shape into
/// plain `genarray` loops (dropping the dependency on the seed array). This
/// matches the paper's folded result, which is a `genarray` (Figure 8).
pub fn elide_covered_modarray(p: &mut FlatProgram) {
    for step in &mut p.steps {
        let Step::With { with, .. } = step else { continue };
        if with.modarray_src.is_none() {
            continue;
        }
        let total: u64 = with.shape.iter().map(|&d| d as u64).product();
        if total > (1 << 24) {
            continue; // too large to verify cheaply
        }
        let mut seen = vec![false; total as usize];
        let strides: Vec<u64> = {
            let mut s = vec![1u64; with.shape.len()];
            for d in (0..with.shape.len().saturating_sub(1)).rev() {
                s[d] = s[d + 1] * with.shape[d + 1] as u64;
            }
            s
        };
        for g in &with.generators {
            g.for_each_point(|iv| {
                let off: u64 = iv.iter().zip(&strides).map(|(&x, &st)| x as u64 * st).sum();
                seen[off as usize] = true;
            });
        }
        if seen.into_iter().all(|b| b) {
            with.modarray_src = None;
            with.default = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::BinKind::*;
    use mdarray::NdArray;

    fn load(arr: usize, index: Vec<SymExpr>) -> SymExpr {
        SymExpr::Load { array: arr, index }
    }

    /// a -> b = a*2 -> c = b+1, all dense [8].
    fn pipeline_program() -> FlatProgram {
        let mut p = FlatProgram::default();
        let a = p.declare("a", vec![8]);
        let b = p.declare("b", vec![8]);
        let c = p.declare("c", vec![8]);
        p.inputs.push(a);
        p.result = c;
        p.steps.push(Step::With {
            target: b,
            with: FlatWith {
                shape: vec![8],
                default: 0,
                modarray_src: None,
                generators: vec![FlatGen::dense(
                    &[8],
                    SymExpr::bin(Mul, load(a, vec![SymExpr::Idx(0)]), SymExpr::Const(2)),
                )],
            },
        });
        p.steps.push(Step::With {
            target: c,
            with: FlatWith {
                shape: vec![8],
                default: 0,
                modarray_src: None,
                generators: vec![FlatGen::dense(
                    &[8],
                    SymExpr::bin(Add, load(b, vec![SymExpr::Idx(0)]), SymExpr::Const(1)),
                )],
            },
        });
        p
    }

    #[test]
    fn folds_simple_pipeline() {
        let mut p = pipeline_program();
        let input = NdArray::from_fn([8usize], |ix| ix[0] as i64);
        let expect = p.run(std::slice::from_ref(&input), &mut 0).unwrap();

        let stats = fold_program(&mut p);
        assert_eq!(stats.folds, 1);
        assert_eq!(p.steps.len(), 1);
        let got = p.run(&[input], &mut 0).unwrap();
        assert_eq!(got, expect);
        // Folded body reads `a` directly.
        match &p.steps[0] {
            Step::With { with, .. } => {
                let mut loads = Vec::new();
                with.generators[0].body.loads(&mut loads);
                assert_eq!(loads, vec![0]);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn folds_across_region_structure() {
        // Producer with two generators (even/odd step-2 phases); consumer
        // reads with a shifted index, forcing phase analysis and a split-free
        // exact match per phase.
        let mut p = FlatProgram::default();
        let a = p.declare("a", vec![16]);
        let b = p.declare("b", vec![16]);
        let c = p.declare("c", vec![8]);
        p.inputs.push(a);
        p.result = c;
        let even = FlatGen {
            lower: vec![0],
            upper: vec![16],
            step: vec![2],
            width: vec![1],
            body: load(a, vec![SymExpr::Idx(0)]),
        };
        let odd = FlatGen {
            lower: vec![1],
            upper: vec![16],
            step: vec![2],
            width: vec![1],
            body: SymExpr::bin(Add, load(a, vec![SymExpr::Idx(0)]), SymExpr::Const(100)),
        };
        p.steps.push(Step::With {
            target: b,
            with: FlatWith {
                shape: vec![16],
                default: 0,
                modarray_src: None,
                generators: vec![even, odd],
            },
        });
        // c[t] = b[2t] + b[2t+1]
        let two_t = SymExpr::bin(Mul, SymExpr::Const(2), SymExpr::Idx(0));
        let body = SymExpr::bin(
            Add,
            load(b, vec![two_t.clone()]),
            load(b, vec![SymExpr::bin(Add, two_t, SymExpr::Const(1))]),
        );
        p.steps.push(Step::With {
            target: c,
            with: FlatWith {
                shape: vec![8],
                default: 0,
                modarray_src: None,
                generators: vec![FlatGen::dense(&[8], body)],
            },
        });

        let input = NdArray::from_fn([16usize], |ix| (ix[0] * 3) as i64);
        let expect = p.run(std::slice::from_ref(&input), &mut 0).unwrap();
        let stats = fold_program(&mut p);
        assert_eq!(stats.folds, 1);
        assert_eq!(p.steps.len(), 1);
        assert_eq!(p.run(&[input], &mut 0).unwrap(), expect);
    }

    #[test]
    fn splits_consumer_when_producer_regions_differ() {
        // Producer: [0,8) -> a[i], [8,16) -> -a[i]. Consumer reads b[i]
        // densely over [0,16): must split into two pieces.
        let mut p = FlatProgram::default();
        let a = p.declare("a", vec![16]);
        let b = p.declare("b", vec![16]);
        let c = p.declare("c", vec![16]);
        p.inputs.push(a);
        p.result = c;
        let lo_gen = FlatGen {
            lower: vec![0],
            upper: vec![8],
            step: vec![1],
            width: vec![1],
            body: load(a, vec![SymExpr::Idx(0)]),
        };
        let hi_gen = FlatGen {
            lower: vec![8],
            upper: vec![16],
            step: vec![1],
            width: vec![1],
            body: SymExpr::bin(Sub, SymExpr::Const(0), load(a, vec![SymExpr::Idx(0)])),
        };
        p.steps.push(Step::With {
            target: b,
            with: FlatWith {
                shape: vec![16],
                default: 0,
                modarray_src: None,
                generators: vec![lo_gen, hi_gen],
            },
        });
        p.steps.push(Step::With {
            target: c,
            with: FlatWith {
                shape: vec![16],
                default: 0,
                modarray_src: None,
                generators: vec![FlatGen::dense(
                    &[16],
                    SymExpr::bin(Add, load(b, vec![SymExpr::Idx(0)]), SymExpr::Const(5)),
                )],
            },
        });

        let input = NdArray::from_fn([16usize], |ix| ix[0] as i64 + 1);
        let expect = p.run(std::slice::from_ref(&input), &mut 0).unwrap();
        let stats = fold_program(&mut p);
        assert_eq!(stats.folds, 1);
        assert!(stats.splits >= 1);
        assert_eq!(p.steps.len(), 1);
        match &p.steps[0] {
            Step::With { with, .. } => assert_eq!(with.generators.len(), 2),
            _ => panic!(),
        }
        assert_eq!(p.run(&[input], &mut 0).unwrap(), expect);
    }

    #[test]
    fn uncovered_reads_fold_to_default() {
        // Producer covers [0,4) of an [8]-array with default 7; consumer
        // reads all of it.
        let mut p = FlatProgram::default();
        let a = p.declare("a", vec![8]);
        let b = p.declare("b", vec![8]);
        let c = p.declare("c", vec![8]);
        p.inputs.push(a);
        p.result = c;
        p.steps.push(Step::With {
            target: b,
            with: FlatWith {
                shape: vec![8],
                default: 7,
                modarray_src: None,
                generators: vec![FlatGen {
                    lower: vec![0],
                    upper: vec![4],
                    step: vec![1],
                    width: vec![1],
                    body: load(a, vec![SymExpr::Idx(0)]),
                }],
            },
        });
        p.steps.push(Step::With {
            target: c,
            with: FlatWith {
                shape: vec![8],
                default: 0,
                modarray_src: None,
                generators: vec![FlatGen::dense(&[8], load(b, vec![SymExpr::Idx(0)]))],
            },
        });
        let input = NdArray::from_fn([8usize], |ix| ix[0] as i64 * 10);
        let expect = p.run(std::slice::from_ref(&input), &mut 0).unwrap();
        fold_program(&mut p);
        assert_eq!(p.steps.len(), 1);
        assert_eq!(p.run(&[input], &mut 0).unwrap(), expect);
    }

    #[test]
    fn multiple_consumers_prevent_folding() {
        let mut p = pipeline_program();
        // Add a second consumer of b.
        let d = p.declare("d", vec![8]);
        p.steps.push(Step::With {
            target: d,
            with: FlatWith {
                shape: vec![8],
                default: 0,
                modarray_src: None,
                generators: vec![FlatGen::dense(&[8], load(1, vec![SymExpr::Idx(0)]))],
            },
        });
        let before = p.steps.len();
        let stats = fold_program(&mut p);
        assert_eq!(stats.folds, 0);
        assert_eq!(p.steps.len(), before);
    }

    #[test]
    fn covered_modarray_becomes_genarray() {
        let mut p = FlatProgram::default();
        let seed = p.declare("seed", vec![6]);
        let out = p.declare("out", vec![6]);
        p.inputs.push(seed);
        p.result = out;
        p.steps.push(Step::With {
            target: out,
            with: FlatWith {
                shape: vec![6],
                default: 0,
                modarray_src: Some(seed),
                generators: vec![
                    FlatGen {
                        lower: vec![0],
                        upper: vec![6],
                        step: vec![2],
                        width: vec![1],
                        body: SymExpr::Const(1),
                    },
                    FlatGen {
                        lower: vec![1],
                        upper: vec![6],
                        step: vec![2],
                        width: vec![1],
                        body: SymExpr::Const(2),
                    },
                ],
            },
        });
        elide_covered_modarray(&mut p);
        match &p.steps[0] {
            Step::With { with, .. } => assert!(with.modarray_src.is_none()),
            _ => panic!(),
        }
    }

    #[test]
    fn partially_covered_modarray_is_kept() {
        let mut p = FlatProgram::default();
        let seed = p.declare("seed", vec![6]);
        let out = p.declare("out", vec![6]);
        p.inputs.push(seed);
        p.result = out;
        p.steps.push(Step::With {
            target: out,
            with: FlatWith {
                shape: vec![6],
                default: 0,
                modarray_src: Some(seed),
                generators: vec![FlatGen {
                    lower: vec![0],
                    upper: vec![6],
                    step: vec![2],
                    width: vec![1],
                    body: SymExpr::Const(1),
                }],
            },
        });
        elide_covered_modarray(&mut p);
        match &p.steps[0] {
            Step::With { with, .. } => assert_eq!(with.modarray_src, Some(seed)),
            _ => panic!(),
        }
    }
}
