//! Dead-step elimination on flat programs.
//!
//! After folding, producer steps whose arrays are no longer read (and are not
//! the program result) are removed. Standard backward liveness over the step
//! list; host steps are pure (the language is side-effect free), so they are
//! removable like any other step.

use crate::wir::{FlatProgram, HostBinding, Step};
use std::collections::HashSet;

/// Remove steps whose targets are never consumed. Returns how many steps
/// were dropped.
pub fn eliminate_dead_steps(p: &mut FlatProgram) -> usize {
    let mut live: HashSet<usize> = HashSet::new();
    live.insert(p.result);
    let mut keep = vec![false; p.steps.len()];
    for (i, step) in p.steps.iter().enumerate().rev() {
        let target = match step {
            Step::With { target, .. } | Step::Host { target, .. } => *target,
        };
        if !live.contains(&target) {
            continue;
        }
        keep[i] = true;
        // The step's reads become live.
        match step {
            Step::With { with, .. } => {
                if let Some(src) = with.modarray_src {
                    live.insert(src);
                }
                let mut loads = Vec::new();
                for g in &with.generators {
                    g.body.loads(&mut loads);
                }
                live.extend(loads);
            }
            Step::Host { bindings, .. } => {
                for b in bindings {
                    if let HostBinding::Array(id) = b {
                        live.insert(*id);
                    }
                }
            }
        }
        // A later step writing the same array id shadows earlier ones; since
        // our SSA-style lowering gives every step a fresh target this does
        // not arise, so `target` simply stays live for earlier producers.
    }
    let before = p.steps.len();
    let mut i = 0;
    p.steps.retain(|_| {
        let k = keep[i];
        i += 1;
        k
    });
    before - p.steps.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wir::{FlatGen, FlatWith, SymExpr};

    fn with_step(target: usize, reads: Option<usize>) -> Step {
        let body = match reads {
            Some(a) => SymExpr::Load { array: a, index: vec![SymExpr::Idx(0)] },
            None => SymExpr::Const(1),
        };
        Step::With {
            target,
            with: FlatWith {
                shape: vec![4],
                default: 0,
                modarray_src: None,
                generators: vec![FlatGen::dense(&[4], body)],
            },
        }
    }

    #[test]
    fn removes_unused_steps() {
        let mut p = FlatProgram::default();
        let a = p.declare("a", vec![4]);
        let dead = p.declare("dead", vec![4]);
        let out = p.declare("out", vec![4]);
        p.inputs.push(a);
        p.result = out;
        p.steps.push(with_step(dead, Some(a)));
        p.steps.push(with_step(out, Some(a)));
        let dropped = eliminate_dead_steps(&mut p);
        assert_eq!(dropped, 1);
        assert_eq!(p.steps.len(), 1);
    }

    #[test]
    fn keeps_transitive_dependencies() {
        let mut p = FlatProgram::default();
        let a = p.declare("a", vec![4]);
        let mid = p.declare("mid", vec![4]);
        let out = p.declare("out", vec![4]);
        p.inputs.push(a);
        p.result = out;
        p.steps.push(with_step(mid, Some(a)));
        p.steps.push(with_step(out, Some(mid)));
        assert_eq!(eliminate_dead_steps(&mut p), 0);
        assert_eq!(p.steps.len(), 2);
    }

    #[test]
    fn keeps_modarray_sources() {
        let mut p = FlatProgram::default();
        let seed = p.declare("seed", vec![4]);
        let out = p.declare("out", vec![4]);
        p.result = out;
        p.steps.push(with_step(seed, None));
        p.steps.push(Step::With {
            target: out,
            with: FlatWith {
                shape: vec![4],
                default: 0,
                modarray_src: Some(seed),
                generators: vec![],
            },
        });
        assert_eq!(eliminate_dead_steps(&mut p), 0);
        assert_eq!(p.steps.len(), 2);
    }
}
