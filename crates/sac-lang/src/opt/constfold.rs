//! Constant folding over scalars, vectors and matrices.
//!
//! After inlining, the downscaler's tiler parameters (`origin`, `fitting`,
//! `paving`, pattern and repetition shapes) are literal vectors/matrices bound
//! to locals. This pass propagates such literals and folds the arithmetic the
//! tiler formulae perform on them (`CAT(paving, fitting)` becomes a matrix
//! literal; `shape(...)` of known-shape expressions becomes a vector literal),
//! so that lowering sees concrete bounds everywhere the paper's compiler
//! would.

use crate::ast::*;
use crate::builtins::{call_builtin, is_builtin};
use crate::value::Value;
use mdarray::NdArray;
use std::collections::HashMap;

/// Fold constants within a single (typically inlined) function.
pub fn fold_function(f: &FunDef) -> FunDef {
    let mut env: HashMap<String, Value> = HashMap::new();
    let body = fold_stmts(&f.body, &mut env);
    FunDef { name: f.name.clone(), ret: f.ret.clone(), params: f.params.clone(), body }
}

fn fold_stmts(stmts: &[Stmt], env: &mut HashMap<String, Value>) -> Vec<Stmt> {
    let mut out = Vec::with_capacity(stmts.len());
    for s in stmts {
        match s {
            Stmt::Assign(LValue::Var(n), e) => {
                let fe = fold_expr(e, env);
                match expr_to_value(&fe) {
                    Some(v) if representable(&v) => {
                        env.insert(n.clone(), v);
                    }
                    _ => {
                        env.remove(n);
                    }
                }
                out.push(Stmt::Assign(LValue::Var(n.clone()), fe));
            }
            Stmt::Assign(LValue::Index(n, ix), e) => {
                // The variable is mutated: forget any constant binding.
                env.remove(n);
                out.push(Stmt::Assign(
                    LValue::Index(n.clone(), fold_expr(ix, env)),
                    fold_expr(e, env),
                ));
            }
            Stmt::For { var, init, limit, body } => {
                let init = fold_expr(init, env);
                let limit = fold_expr(limit, env);
                // The loop variable and anything assigned inside vary.
                let mut inner = env.clone();
                inner.remove(var);
                forget_assigned(body, &mut inner);
                let body = fold_stmts(body, &mut inner);
                forget_assigned(&body, env);
                out.push(Stmt::For { var: var.clone(), init, limit, body });
            }
            Stmt::Return(e) => out.push(Stmt::Return(fold_expr(e, env))),
        }
    }
    out
}

fn forget_assigned(stmts: &[Stmt], env: &mut HashMap<String, Value>) {
    for s in stmts {
        match s {
            Stmt::Assign(LValue::Var(n), _) | Stmt::Assign(LValue::Index(n, _), _) => {
                env.remove(n);
            }
            Stmt::For { var, body, .. } => {
                env.remove(var);
                forget_assigned(body, env);
            }
            Stmt::Return(_) => {}
        }
    }
}

fn fold_expr(e: &Expr, env: &HashMap<String, Value>) -> Expr {
    match e {
        Expr::Int(_) => e.clone(),
        Expr::Var(n) => match env.get(n) {
            Some(v) => value_to_expr(v),
            None => e.clone(),
        },
        Expr::VecLit(es) => Expr::VecLit(es.iter().map(|x| fold_expr(x, env)).collect()),
        Expr::Neg(x) => {
            let fx = fold_expr(x, env);
            if let Some(Value::Int(v)) = expr_to_value(&fx) {
                Expr::Int(-v)
            } else {
                Expr::Neg(Box::new(fx))
            }
        }
        Expr::Bin(op, l, r) => {
            let fl = fold_expr(l, env);
            let fr = fold_expr(r, env);
            if let (Some(lv), Some(rv)) = (expr_to_value(&fl), expr_to_value(&fr)) {
                // Reuse the interpreter's binop via a tiny program-free eval.
                if let Ok(v) = crate::eval::fold_binop(*op, &lv, &rv) {
                    return value_to_expr(&v);
                }
            }
            Expr::Bin(*op, Box::new(fl), Box::new(fr))
        }
        Expr::Call(name, args) => {
            let fargs: Vec<Expr> = args.iter().map(|a| fold_expr(a, env)).collect();
            if is_builtin(name) {
                let vals: Option<Vec<Value>> = fargs.iter().map(expr_to_value).collect();
                if let Some(vals) = vals {
                    if let Ok(v) = call_builtin(name, &vals) {
                        if representable(&v) {
                            return value_to_expr(&v);
                        }
                    }
                }
            }
            Expr::Call(name.clone(), fargs)
        }
        Expr::Select(a, ix) => {
            let fa = fold_expr(a, env);
            let fix = fold_expr(ix, env);
            if let (Some(Value::Arr(arr)), Some(iv)) = (expr_to_value(&fa), expr_to_value(&fix)) {
                let index = match &iv {
                    Value::Int(i) => Some(vec![*i]),
                    Value::Arr(_) => iv.as_ivec().ok(),
                };
                if let Some(index) = index {
                    if let Ok(v) = crate::value::select_vec(&arr, &index) {
                        if representable(&v) {
                            return value_to_expr(&v);
                        }
                    }
                }
            }
            Expr::Select(Box::new(fa), Box::new(fix))
        }
        Expr::With(w) => {
            let generators = w
                .generators
                .iter()
                .map(|g| {
                    // Generator variables shadow any constant of the same name.
                    let mut inner = env.clone();
                    match &g.var {
                        GenVar::Name(n) => {
                            inner.remove(n);
                        }
                        GenVar::Components(ns) => {
                            for n in ns {
                                inner.remove(n);
                            }
                        }
                    }
                    forget_assigned(&g.body, &mut inner);
                    Generator {
                        lower: g.lower.as_ref().map(|x| fold_expr(x, env)),
                        upper: g.upper.as_ref().map(|x| fold_expr(x, env)),
                        upper_inclusive: g.upper_inclusive,
                        step: g.step.as_ref().map(|x| fold_expr(x, env)),
                        width: g.width.as_ref().map(|x| fold_expr(x, env)),
                        var: g.var.clone(),
                        body: fold_stmts(&g.body, &mut inner.clone()),
                        yield_expr: {
                            let mut benv = inner.clone();
                            let body = fold_stmts(&g.body, &mut benv);
                            let _ = body;
                            fold_expr(&g.yield_expr, &benv)
                        },
                    }
                })
                .collect();
            let op = match &w.op {
                WithOp::Genarray { shape, default } => WithOp::Genarray {
                    shape: fold_expr(shape, env),
                    default: default.as_ref().map(|d| fold_expr(d, env)),
                },
                WithOp::Modarray(src) => WithOp::Modarray(fold_expr(src, env)),
                WithOp::Fold { fun, neutral } => {
                    WithOp::Fold { fun: fun.clone(), neutral: fold_expr(neutral, env) }
                }
            };
            Expr::With(Box::new(WithLoop { generators, op }))
        }
        Expr::Block(stmts, r) => {
            let mut inner = env.clone();
            let stmts = fold_stmts(stmts, &mut inner);
            let r = fold_expr(r, &inner);
            Expr::Block(stmts, Box::new(r))
        }
    }
}

/// Can this value be written back as a literal expression? (Scalars,
/// vectors and matrices; higher ranks have no literal syntax.)
pub fn representable(v: &Value) -> bool {
    v.rank() <= 2
}

/// Literal expression → value, when fully constant.
pub fn expr_to_value(e: &Expr) -> Option<Value> {
    match e {
        Expr::Int(v) => Some(Value::Int(*v)),
        Expr::Neg(x) => match expr_to_value(x)? {
            Value::Int(v) => Some(Value::Int(-v)),
            _ => None,
        },
        Expr::VecLit(es) => {
            let vals: Option<Vec<Value>> = es.iter().map(expr_to_value).collect();
            let vals = vals?;
            if vals.iter().all(|v| matches!(v, Value::Int(_))) {
                Some(Value::from_ivec(vals.iter().map(|v| v.as_int().unwrap()).collect()))
            } else {
                // Matrix literal.
                let rows: Option<Vec<Vec<i64>>> = vals.iter().map(|v| v.as_ivec().ok()).collect();
                let rows = rows?;
                let cols = rows.first()?.len();
                if rows.iter().any(|r| r.len() != cols) {
                    return None;
                }
                let data: Vec<i64> = rows.into_iter().flatten().collect();
                Some(Value::Arr(NdArray::from_vec([vals.len(), cols], data).ok()?))
            }
        }
        _ => None,
    }
}

/// Value → literal expression (scalars, vectors, matrices).
pub fn value_to_expr(v: &Value) -> Expr {
    match v {
        Value::Int(x) => {
            if *x < 0 {
                Expr::Neg(Box::new(Expr::Int(-x)))
            } else {
                Expr::Int(*x)
            }
        }
        Value::Arr(a) if a.rank() == 1 => {
            Expr::VecLit(a.as_slice().iter().map(|&x| value_to_expr(&Value::Int(x))).collect())
        }
        Value::Arr(a) if a.rank() == 2 => {
            let cols = a.shape().dim(1);
            Expr::VecLit(
                (0..a.shape().dim(0))
                    .map(|r| {
                        Expr::VecLit(
                            (0..cols)
                                .map(|c| value_to_expr(&Value::Int(*a.get(&[r, c]).unwrap())))
                                .collect(),
                        )
                    })
                    .collect(),
            )
        }
        // Higher ranks cannot be written as literals; keep a placeholder
        // variable that will never fold (callers avoid this case).
        Value::Arr(_) => Expr::Var("__nonliteral".into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn fold_src(src: &str) -> FunDef {
        let p = parse_program(src).unwrap();
        fold_function(&p.funs[0])
    }

    #[test]
    fn folds_scalar_arithmetic() {
        let f = fold_src("int f() { x = 2 + 3 * 4; return( x); }");
        assert_eq!(f.body[0], Stmt::Assign(LValue::Var("x".into()), Expr::Int(14)));
        assert!(matches!(&f.body[1], Stmt::Return(Expr::Int(14))));
    }

    #[test]
    fn folds_vector_and_matrix_ops() {
        let f = fold_src(
            "int[.] f() { p = [[1,0],[0,8]]; ft = [[0],[1]]; m = CAT(p, ft); o = MV(m, [2,3,5]); return( o); }",
        );
        // o = P.(2,3) + F.(5) = (2, 24+5) = (2, 29)
        match &f.body[3] {
            Stmt::Assign(_, Expr::VecLit(es)) => {
                assert_eq!(es[0], Expr::Int(2));
                assert_eq!(es[1], Expr::Int(29));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn folds_selection_of_literals() {
        let f = fold_src("int f() { v = [10, 20, 30]; return( v[[1]]); }");
        assert!(matches!(&f.body[1], Stmt::Return(Expr::Int(20))));
    }

    #[test]
    fn does_not_fold_unknowns() {
        let f = fold_src("int f(int x) { y = x + 1; return( y); }");
        assert!(matches!(&f.body[0], Stmt::Assign(_, Expr::Bin(BinKind::Add, _, _))));
    }

    #[test]
    fn loop_variables_are_not_constants() {
        let f = fold_src("int f() { s = 0; for( i=0; i< 3; i++) { s = s + i; } return( s); }");
        // `s` must not be folded to 0 in the loop body or the return.
        match &f.body[2] {
            Stmt::Return(Expr::Var(n)) => assert_eq!(n, "s"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn generator_bounds_fold() {
        let f = fold_src(
            "int[*] f() { r = [2, 2]; o = with { ([0,0] <= iv < r) : 1; } : genarray( r, 0); return( o); }",
        );
        match &f.body[1] {
            Stmt::Assign(_, Expr::With(w)) => {
                assert!(matches!(w.generators[0].upper, Some(Expr::VecLit(_))));
                match &w.op {
                    WithOp::Genarray { shape, .. } => {
                        assert!(matches!(shape, Expr::VecLit(_)))
                    }
                    _ => panic!(),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn negative_values_roundtrip() {
        let f = fold_src("int f() { x = 0 - 3; return( x % 10); }");
        // Euclidean: -3 % 10 = 7.
        assert!(matches!(&f.body[1], Stmt::Return(Expr::Int(7))));
    }
}
