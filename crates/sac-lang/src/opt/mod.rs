//! The SaC high-level optimiser.
//!
//! The pipeline mirrors the real sac2c phases the paper relies on:
//!
//! 1. [`inline`] — function inlining, exposing WITH-loops across call
//!    boundaries (the CUDA backend "only parallelises the outermost
//!    WITH-loops containing no function invocations"),
//! 2. [`constfold`] — constant folding over scalars, vectors and matrices,
//! 3. [`lower`] — lowering to the flat WIR: WITH-loop scalarisation (nested
//!    loops and tile-building idioms become flat scalar-celled loops),
//!    vector/matrix arithmetic on known values becomes symbolic scalar
//!    arithmetic. Unlowerable constructs (the generic tiler's `for` nest)
//!    become host steps,
//! 4. [`wlf`] — **WITH-loop folding**: consecutive single-use WITH-loops are
//!    fused by substituting producer bodies into consumers, splitting
//!    generators where producer regions or wrap-around modulo addressing
//!    demand it,
//! 5. [`split`] — the interval/congruence analyses and generator-splitting
//!    machinery shared by folding and modulo resolution,
//! 6. [`dce`] — removal of steps whose arrays are never consumed,
//! 7. [`pipeline`] — the driver tying it together.

pub mod constfold;
pub mod dce;
pub mod inline;
pub mod lower;
pub mod pipeline;
pub mod split;
pub mod sym;
pub mod wlf;

pub use lower::{lower_function, ArgDesc};
pub use pipeline::{optimize, OptConfig, OptReport};
