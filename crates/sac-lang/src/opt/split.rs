//! Generator splitting: modulo resolution and lattice partitioning.
//!
//! Two clients:
//!
//! 1. **Modulo resolution** ([`resolve_mods`]) — after folding, generator
//!    bodies contain wrap-around addressing like `(8*t + p) % 1920`. Over most
//!    of a generator's range the modulo is the identity; near the frame edge
//!    it wraps. Splitting the generator at the crossing lattice point lets
//!    each piece drop (or statically resolve) the modulo — this is precisely
//!    why the paper's folded horizontal filter has 5 generators and the
//!    vertical one 7 rather than 3 and 4.
//! 2. **Producer-region matching** for WITH-loop folding ([`split_by_runs`]
//!    used from [`crate::opt::wlf`]) — a consumer generator is split so each
//!    piece's accesses land in exactly one producer generator.
//!
//! Splitting is best-effort and bounded; when it gives up, the (still
//! correct) modulo stays in the body and execution proceeds unchanged.

use crate::ast::BinKind;
use crate::opt::sym::{congruence, interval};
use crate::wir::{FlatGen, SymExpr};

/// Upper bound on pieces produced from one original generator.
pub const MAX_PIECES: usize = 32;
/// Upper bound on signature runs a single split may produce. Boundary
/// phenomena (wrap-around tiles, producer-region edges) yield 2–3 runs; a
/// signature that alternates per lattice point would fragment the generator
/// into per-point kernels, which is never profitable — such splits are
/// rejected, which in turn (correctly) stops WITH-loop folding from fusing
/// across filter boundaries where tilings interleave.
pub const MAX_RUNS: usize = 8;
/// Recursion depth bound for nested split attempts.
const MAX_DEPTH: usize = 8;
/// Largest per-dimension lattice we are willing to scan for split points.
const MAX_SCAN: i64 = 1 << 20;

/// Resolve wrap-around `%` in `gen`'s body, splitting the generator where the
/// value range crosses window boundaries. Returns the resulting pieces (just
/// `[gen]`, rewritten or untouched, when no split is possible or needed).
pub fn resolve_mods(gen: FlatGen) -> Vec<FlatGen> {
    let mut out = Vec::new();
    resolve_rec(gen, MAX_DEPTH, &mut out);
    out
}

fn resolve_rec(mut gen: FlatGen, depth: usize, out: &mut Vec<FlatGen>) {
    // First rewrite everything the interval analysis already resolves.
    gen.body = rewrite_resolvable(&gen.body, &gen).simplify();
    let Some(problem) = first_unresolved_mod(&gen.body, &gen) else {
        out.push(gen);
        return;
    };
    if depth == 0 || out.len() + 1 >= MAX_PIECES {
        out.push(gen);
        return;
    }
    // Scan candidate dimensions for a signature-run split.
    let Some(pieces) = split_by_runs(&gen, |pinned| {
        // Signature: the window index when the problematic mod resolves for
        // this pinned slice, or None when it still straddles a boundary.
        window_of(&problem.0, problem.1, pinned)
    }) else {
        out.push(gen);
        return;
    };
    for p in pieces {
        resolve_rec(p, depth - 1, out);
    }
}

/// The first `e % n` in the body whose value range is not confined to one
/// window, together with its modulus.
fn first_unresolved_mod(e: &SymExpr, g: &FlatGen) -> Option<(SymExpr, i64)> {
    match e {
        SymExpr::Const(_) | SymExpr::Idx(_) => None,
        SymExpr::Bin(BinKind::Mod, l, r) => {
            if let Some(inner) = first_unresolved_mod(l, g) {
                return Some(inner);
            }
            if let SymExpr::Const(n) = **r {
                if n > 0 && window_of(l, n, g).is_none() {
                    return Some(((**l).clone(), n));
                }
            }
            first_unresolved_mod(r, g)
        }
        SymExpr::Bin(_, l, r) => first_unresolved_mod(l, g).or_else(|| first_unresolved_mod(r, g)),
        SymExpr::Load { index, .. } => index.iter().find_map(|ix| first_unresolved_mod(ix, g)),
    }
}

/// If `e`'s range over `g` stays within one length-`n` window, its index.
fn window_of(e: &SymExpr, n: i64, g: &FlatGen) -> Option<i64> {
    let iv = interval(e, g)?;
    let k_lo = iv.lo.div_euclid(n);
    let k_hi = iv.hi.div_euclid(n);
    (k_lo == k_hi).then_some(k_lo)
}

/// Rewrite every `e % n` whose range is confined to window `k` as `e - k*n`.
fn rewrite_resolvable(e: &SymExpr, g: &FlatGen) -> SymExpr {
    match e {
        SymExpr::Const(_) | SymExpr::Idx(_) => e.clone(),
        SymExpr::Bin(BinKind::Mod, l, r) => {
            let l2 = rewrite_resolvable(l, g);
            let r2 = rewrite_resolvable(r, g);
            if let SymExpr::Const(n) = r2 {
                if n > 0 {
                    // Congruence shortcut: value mod n constant.
                    let c = congruence(&l2, g);
                    if c.modulus == 0 {
                        return SymExpr::Const(c.residue.rem_euclid(n));
                    }
                    if let Some(k) = window_of(&l2, n, g) {
                        if k == 0 {
                            return l2;
                        }
                        return SymExpr::bin(BinKind::Sub, l2, SymExpr::Const(k * n));
                    }
                }
            }
            SymExpr::bin(BinKind::Mod, l2, r2)
        }
        SymExpr::Bin(op, l, r) => {
            SymExpr::bin(*op, rewrite_resolvable(l, g), rewrite_resolvable(r, g))
        }
        SymExpr::Load { array, index } => SymExpr::Load {
            array: *array,
            index: index.iter().map(|ix| rewrite_resolvable(ix, g)).collect(),
        },
    }
}

/// Split `gen` along one dimension into runs of lattice points that share a
/// signature. `sig` is evaluated on a copy of `gen` with the candidate
/// dimension pinned to a single lattice point.
///
/// Returns `None` when no dimension yields more than one distinct signature
/// (splitting would not make progress) or when scanning is infeasible.
pub fn split_by_runs<S: PartialEq + Clone>(
    gen: &FlatGen,
    sig: impl Fn(&FlatGen) -> S,
) -> Option<Vec<FlatGen>> {
    // Prefer later (faster-varying) dimensions: in the downscaler flows the
    // wrap variable is the column/tile dimension.
    for d in (0..gen.rank()).rev() {
        if gen.width[d] != 1 {
            continue; // phase-preserving split with width > 1 is not supported
        }
        let (l, u, s) = (gen.lower[d], gen.upper[d], gen.step[d]);
        if l >= u {
            continue;
        }
        let points = (u - 1 - l) / s + 1;
        if !(2..=MAX_SCAN).contains(&points) {
            continue;
        }
        // Collect signature runs.
        let mut runs: Vec<(i64, i64, S)> = Vec::new(); // [start, end) lattice bounds
        let mut x = l;
        while x < u {
            let mut pinned = gen.clone();
            pinned.lower[d] = x;
            pinned.upper[d] = x + 1;
            pinned.step[d] = 1;
            pinned.width[d] = 1;
            let s_here = sig(&pinned);
            match runs.last_mut() {
                Some((_, end, prev)) if *prev == s_here => *end = x + 1,
                _ => runs.push((x, x + 1, s_here)),
            }
            x += s;
        }
        if runs.len() < 2 || runs.len() > MAX_RUNS {
            continue;
        }
        let mut pieces = Vec::with_capacity(runs.len());
        for (start, end, _) in runs {
            let mut p = gen.clone();
            p.lower[d] = start;
            p.upper[d] = end;
            pieces.push(p);
        }
        return Some(pieces);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use BinKind::*;

    fn affine(k: i64, d: usize, c: i64) -> SymExpr {
        SymExpr::bin(Add, SymExpr::bin(Mul, SymExpr::Const(k), SymExpr::Idx(d)), SymExpr::Const(c))
    }

    fn modn(e: SymExpr, n: i64) -> SymExpr {
        SymExpr::bin(Mod, e, SymExpr::Const(n))
    }

    /// The paper's horizontal-filter situation: one generator whose body
    /// loads `(8t + off) % 1920` for window offsets off..off+5 over t∈[0,240).
    fn hfilter_gen(k_off: i64) -> FlatGen {
        // Body: sum of 6 loads at (8t + k_off + p) % 1920.
        let mut body = SymExpr::Const(0);
        for p in 0..6 {
            let load = SymExpr::Load {
                array: 0,
                index: vec![SymExpr::Idx(0), modn(affine(8, 1, k_off + p), 1920)],
            };
            body = SymExpr::bin(Add, body, load);
        }
        FlatGen {
            lower: vec![0, 0],
            upper: vec![1080, 240],
            step: vec![1, 1],
            width: vec![1, 1],
            body,
        }
    }

    #[test]
    fn non_wrapping_generator_stays_single() {
        // Offsets 0..6: max 8*239+5 = 1917 < 1920 — no wrap, one piece,
        // and all mods drop away.
        let pieces = resolve_mods(hfilter_gen(0));
        assert_eq!(pieces.len(), 1);
        let mut loads = Vec::new();
        pieces[0].body.loads(&mut loads);
        assert_eq!(loads.len(), 6);
        assert!(!has_mod(&pieces[0].body), "{:?}", pieces[0].body);
    }

    #[test]
    fn wrapping_generator_splits_in_two() {
        // Offsets 5..11: 8*239+10 = 1922 wraps — the last tile splits off.
        let pieces = resolve_mods(hfilter_gen(5));
        assert_eq!(pieces.len(), 2);
        // Main piece: t in [0, 239); tail: t = 239.
        assert_eq!(pieces[0].upper[1], 239);
        assert_eq!(pieces[1].lower[1], 239);
        for p in &pieces {
            assert!(!has_mod(&p.body), "unresolved mod in {:?}", p.body);
        }
    }

    #[test]
    fn negative_origin_splits_head() {
        // Vertical-filter shape: (9t - 3 + p) % 1080 for p in 0..6, t in [0,120).
        let mut body = SymExpr::Const(0);
        for p in 0..6 {
            let load = SymExpr::Load {
                array: 0,
                index: vec![modn(affine(9, 0, p - 3), 1080), SymExpr::Idx(1)],
            };
            body = SymExpr::bin(Add, body, load);
        }
        let g = FlatGen {
            lower: vec![0, 0],
            upper: vec![120, 720],
            step: vec![1, 1],
            width: vec![1, 1],
            body,
        };
        let pieces = resolve_mods(g);
        // Head tile (t=0) reads negative rows; the rest is wrap-free.
        assert_eq!(pieces.len(), 2);
        assert_eq!(pieces[0].upper[0], 1);
        assert_eq!(pieces[1].lower[0], 1);
        for p in &pieces {
            assert!(!has_mod(&p.body));
        }
    }

    #[test]
    fn unresolvable_mod_is_left_in_place() {
        // (t*t) % 7 — non-affine; interval [0, ...] crosses windows and the
        // scan cannot isolate single-window runs cheaply, but dims of size 1
        // make each point constant, so use two dims to defeat pinning.
        let body = modn(SymExpr::bin(Mul, SymExpr::Idx(0), SymExpr::Idx(1)), 7);
        let g = FlatGen {
            lower: vec![0, 0],
            upper: vec![100, 100],
            step: vec![1, 1],
            width: vec![1, 1],
            body,
        };
        let pieces = resolve_mods(g.clone());
        // Either split into some pieces or left alone; totals must cover the
        // same lattice and remain correct (checked by counting points).
        let total: u64 = pieces.iter().map(|p| p.points()).sum();
        assert_eq!(total, g.points());
    }

    #[test]
    fn split_preserves_lattice_phase() {
        // j in [1, 20) step 3; a signature that flips at j >= 10.
        let g = FlatGen {
            lower: vec![1],
            upper: vec![20],
            step: vec![3],
            width: vec![1],
            body: SymExpr::Const(0),
        };
        let pieces = split_by_runs(&g, |p| p.lower[0] >= 10).unwrap();
        assert_eq!(pieces.len(), 2);
        let pts: Vec<i64> = {
            let mut v = Vec::new();
            for p in &pieces {
                p.for_each_point(|iv| v.push(iv[0]));
            }
            v
        };
        let mut orig = Vec::new();
        g.for_each_point(|iv| orig.push(iv[0]));
        assert_eq!(pts, orig);
    }

    fn has_mod(e: &SymExpr) -> bool {
        match e {
            SymExpr::Const(_) | SymExpr::Idx(_) => false,
            SymExpr::Bin(BinKind::Mod, ..) => true,
            SymExpr::Bin(_, l, r) => has_mod(l) || has_mod(r),
            SymExpr::Load { index, .. } => index.iter().any(has_mod),
        }
    }
}
