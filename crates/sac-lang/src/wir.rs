//! WIR — the flat WITH-loop intermediate representation.
//!
//! Lowering (see [`crate::opt::lower`]) turns an inlined SaC function into a
//! `FlatProgram`: a sequence of steps, each either a *flat WITH-loop* (scalar
//! cells, explicit bounds/step/width, a symbolic scalar body per generator) or
//! a *host step* (an unlowerable construct — the paper's generic output tiler
//! `for` nest — kept as AST to be interpreted on the host).
//!
//! This is the representation on which WITH-loop folding operates and from
//! which the CUDA backend generates one kernel per generator. It also has a
//! direct sequential evaluator used both as a cross-check against the AST
//! interpreter and as the op-counting engine behind the *SAC-Seq* numbers.

use crate::ast::{BinKind, FunDef};
use crate::eval::Interp;
use crate::value::{euclid_mod, trunc_div, Value};
use crate::SacError;
use mdarray::NdArray;

/// A symbolic scalar expression over the index variables of one generator.
#[derive(Debug, Clone, PartialEq)]
pub enum SymExpr {
    /// Integer constant.
    Const(i64),
    /// Component `d` of the generator's index vector.
    Idx(usize),
    /// Binary operation (`Concat` never appears; `Mod` is Euclidean).
    Bin(BinKind, Box<SymExpr>, Box<SymExpr>),
    /// Load `arrays[array][index...]` — the index is one component per
    /// dimension of the source array.
    Load {
        /// Array id within the [`FlatProgram`].
        array: usize,
        /// One index expression per array dimension.
        index: Vec<SymExpr>,
    },
}

impl SymExpr {
    /// Shorthand constructor.
    pub fn bin(op: BinKind, l: SymExpr, r: SymExpr) -> SymExpr {
        SymExpr::Bin(op, Box::new(l), Box::new(r))
    }

    /// Count nodes (used in tests and cost heuristics).
    pub fn node_count(&self) -> usize {
        match self {
            SymExpr::Const(_) | SymExpr::Idx(_) => 1,
            SymExpr::Bin(_, l, r) => 1 + l.node_count() + r.node_count(),
            SymExpr::Load { index, .. } => 1 + index.iter().map(|e| e.node_count()).sum::<usize>(),
        }
    }

    /// All array ids loaded from, in syntactic order (with repeats).
    pub fn loads(&self, out: &mut Vec<usize>) {
        match self {
            SymExpr::Const(_) | SymExpr::Idx(_) => {}
            SymExpr::Bin(_, l, r) => {
                l.loads(out);
                r.loads(out);
            }
            SymExpr::Load { array, index } => {
                out.push(*array);
                for e in index {
                    e.loads(out);
                }
            }
        }
    }

    /// Constant-simplify: fold constant subtrees and algebraic identities
    /// (`x+0`, `x*1`, `x*0`, `0/n`…). Pure syntactic rewriting.
    pub fn simplify(self) -> SymExpr {
        match self {
            SymExpr::Bin(op, l, r) => {
                let l = l.simplify();
                let r = r.simplify();
                if let (SymExpr::Const(a), SymExpr::Const(b)) = (&l, &r) {
                    if let Some(v) = eval_const(op, *a, *b) {
                        return SymExpr::Const(v);
                    }
                }
                match (op, &l, &r) {
                    (BinKind::Add, SymExpr::Const(0), _) => r,
                    (BinKind::Add, _, SymExpr::Const(0)) => l,
                    (BinKind::Sub, _, SymExpr::Const(0)) => l,
                    (BinKind::Mul, SymExpr::Const(1), _) => r,
                    (BinKind::Mul, _, SymExpr::Const(1)) => l,
                    (BinKind::Mul, SymExpr::Const(0), _) => SymExpr::Const(0),
                    (BinKind::Mul, _, SymExpr::Const(0)) => SymExpr::Const(0),
                    (BinKind::Div, _, SymExpr::Const(1)) => l,
                    _ => SymExpr::Bin(op, Box::new(l), Box::new(r)),
                }
            }
            SymExpr::Load { array, index } => {
                SymExpr::Load { array, index: index.into_iter().map(|e| e.simplify()).collect() }
            }
            other => other,
        }
    }

    /// Substitute each `Idx(d)` by `subst[d]` (used by WITH-loop folding).
    pub fn subst_idx(&self, subst: &[SymExpr]) -> SymExpr {
        match self {
            SymExpr::Const(v) => SymExpr::Const(*v),
            SymExpr::Idx(d) => subst[*d].clone(),
            SymExpr::Bin(op, l, r) => SymExpr::bin(*op, l.subst_idx(subst), r.subst_idx(subst)),
            SymExpr::Load { array, index } => SymExpr::Load {
                array: *array,
                index: index.iter().map(|e| e.subst_idx(subst)).collect(),
            },
        }
    }

    /// Evaluate with concrete index values against the program's array store.
    /// `ops` counts visited nodes (loads count double: address + access).
    pub fn eval(
        &self,
        iv: &[i64],
        store: &[Option<NdArray<i64>>],
        ops: &mut u64,
    ) -> Result<i64, SacError> {
        *ops += 1;
        match self {
            SymExpr::Const(v) => Ok(*v),
            SymExpr::Idx(d) => Ok(iv[*d]),
            SymExpr::Bin(op, l, r) => {
                let a = l.eval(iv, store, ops)?;
                let b = r.eval(iv, store, ops)?;
                eval_const_checked(*op, a, b)
            }
            SymExpr::Load { array, index } => {
                *ops += 1;
                let arr = store[*array]
                    .as_ref()
                    .ok_or_else(|| SacError::Eval { msg: format!("array {array} not computed") })?;
                let mut ix = Vec::with_capacity(index.len());
                for (d, e) in index.iter().enumerate() {
                    let x = e.eval(iv, store, ops)?;
                    let extent = arr.shape().dim(d) as i64;
                    if x < 0 || x >= extent {
                        return Err(SacError::Eval {
                            msg: format!("flat load index {x} out of bounds (extent {extent})"),
                        });
                    }
                    ix.push(x as usize);
                }
                Ok(*arr.get_unchecked(&ix))
            }
        }
    }
}

fn eval_const(op: BinKind, a: i64, b: i64) -> Option<i64> {
    eval_const_checked(op, a, b).ok()
}

fn eval_const_checked(op: BinKind, a: i64, b: i64) -> Result<i64, SacError> {
    Ok(match op {
        BinKind::Add => a.wrapping_add(b),
        BinKind::Sub => a.wrapping_sub(b),
        BinKind::Mul => a.wrapping_mul(b),
        BinKind::Div => trunc_div(a, b)?,
        BinKind::Mod => euclid_mod(a, b)?,
        BinKind::Lt => (a < b) as i64,
        BinKind::Le => (a <= b) as i64,
        BinKind::Gt => (a > b) as i64,
        BinKind::Ge => (a >= b) as i64,
        BinKind::Eq => (a == b) as i64,
        BinKind::Ne => (a != b) as i64,
        BinKind::Concat => {
            return Err(SacError::Eval { msg: "concat is not a scalar operation".into() })
        }
    })
}

/// One generator of a flat WITH-loop.
///
/// Covers `{ iv : lower <= iv < upper ∧ (iv-lower) mod step < width }`,
/// writing `body(iv)` to the target array at `iv`.
#[derive(Debug, Clone, PartialEq)]
pub struct FlatGen {
    /// Inclusive lower bound.
    pub lower: Vec<i64>,
    /// Exclusive upper bound.
    pub upper: Vec<i64>,
    /// Step filter (≥ 1 per dimension).
    pub step: Vec<i64>,
    /// Width filter (1 ≤ width ≤ step).
    pub width: Vec<i64>,
    /// Scalar cell expression.
    pub body: SymExpr,
}

impl FlatGen {
    /// A dense generator covering the whole `shape`.
    pub fn dense(shape: &[usize], body: SymExpr) -> FlatGen {
        FlatGen {
            lower: vec![0; shape.len()],
            upper: shape.iter().map(|&d| d as i64).collect(),
            step: vec![1; shape.len()],
            width: vec![1; shape.len()],
            body,
        }
    }

    /// Rank of the index space.
    pub fn rank(&self) -> usize {
        self.lower.len()
    }

    /// Number of lattice points covered.
    pub fn points(&self) -> u64 {
        let mut n = 1u64;
        for d in 0..self.rank() {
            let extent = (self.upper[d] - self.lower[d]).max(0) as u64;
            let (s, w) = (self.step[d] as u64, self.width[d] as u64);
            let full = extent / s;
            let rem = (extent % s).min(w);
            n *= full * w + rem;
        }
        n
    }

    /// Is the region empty?
    pub fn is_empty(&self) -> bool {
        self.points() == 0
    }

    /// Visit every lattice point.
    pub fn for_each_point(&self, mut f: impl FnMut(&[i64])) {
        if self.is_empty() {
            return;
        }
        let rank = self.rank();
        let mut iv = self.lower.clone();
        loop {
            if iv
                .iter()
                .zip(&self.lower)
                .zip(self.step.iter().zip(&self.width))
                .all(|((x, l), (s, w))| (x - l).rem_euclid(*s) < *w)
            {
                f(&iv);
            }
            let mut d = rank;
            loop {
                if d == 0 {
                    return;
                }
                d -= 1;
                iv[d] += 1;
                if iv[d] < self.upper[d] {
                    break;
                }
                iv[d] = self.lower[d];
            }
        }
    }
}

/// A flat WITH-loop: scalar-celled, explicit shape, one or more generators.
#[derive(Debug, Clone, PartialEq)]
pub struct FlatWith {
    /// Result shape.
    pub shape: Vec<usize>,
    /// Default cell value for uncovered indices (genarray).
    pub default: i64,
    /// For lowered `modarray`: the array whose copy seeds the result.
    pub modarray_src: Option<usize>,
    /// The generators; later generators win overlaps.
    pub generators: Vec<FlatGen>,
}

/// An array declared in a flat program.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayDef {
    /// Diagnostic name (source variable it came from).
    pub name: String,
    /// Shape.
    pub shape: Vec<usize>,
}

/// One execution step.
#[derive(Debug, Clone)]
pub enum Step {
    /// Compute `target` with a flat WITH-loop (GPU-eligible: this is what the
    /// paper calls a CUDA-WITH-loop once it reaches the backend).
    With {
        /// Target array id.
        target: usize,
        /// The loop.
        with: FlatWith,
    },
    /// Run an unlowerable piece on the host via the AST interpreter. The
    /// synthesized function receives `bindings` as arguments and returns the
    /// new contents of `target`.
    Host {
        /// Target array id.
        target: usize,
        /// Synthesized single-function wrapper around the original AST.
        fun: FunDef,
        /// Positional bindings for the wrapper's parameters.
        bindings: Vec<HostBinding>,
        /// Why this step could not be lowered (for reports).
        reason: String,
    },
}

/// How a host-step parameter is bound.
#[derive(Debug, Clone)]
pub enum HostBinding {
    /// Pass the current contents of a program array.
    Array(usize),
    /// Pass a constant value.
    Const(Value),
}

/// A lowered program: arrays, external inputs, steps, and the result array.
#[derive(Debug, Clone, Default)]
pub struct FlatProgram {
    /// All arrays; ids index into this.
    pub arrays: Vec<ArrayDef>,
    /// Ids bound to caller-supplied arrays, in parameter order.
    pub inputs: Vec<usize>,
    /// Steps in execution order.
    pub steps: Vec<Step>,
    /// Id of the returned array.
    pub result: usize,
}

impl FlatProgram {
    /// Declare an array, returning its id.
    pub fn declare(&mut self, name: impl Into<String>, shape: Vec<usize>) -> usize {
        self.arrays.push(ArrayDef { name: name.into(), shape });
        self.arrays.len() - 1
    }

    /// Total generators across all With steps (= kernel count after codegen).
    pub fn generator_count(&self) -> usize {
        self.steps
            .iter()
            .map(|s| match s {
                Step::With { with, .. } => with.generators.len(),
                Step::Host { .. } => 0,
            })
            .sum()
    }

    /// Execute sequentially. Returns the result array; `ops` accumulates the
    /// abstract op count that models SAC-Seq execution cost.
    pub fn run(&self, inputs: &[NdArray<i64>], ops: &mut u64) -> Result<NdArray<i64>, SacError> {
        let mut store: Vec<Option<NdArray<i64>>> = vec![None; self.arrays.len()];
        if inputs.len() != self.inputs.len() {
            return Err(SacError::Eval {
                msg: format!("expected {} inputs, got {}", self.inputs.len(), inputs.len()),
            });
        }
        for (&id, arr) in self.inputs.iter().zip(inputs) {
            if arr.shape().dims() != self.arrays[id].shape.as_slice() {
                return Err(SacError::Eval {
                    msg: format!(
                        "input '{}' has shape {:?}, expected {:?}",
                        self.arrays[id].name,
                        arr.shape().dims(),
                        self.arrays[id].shape
                    ),
                });
            }
            store[id] = Some(arr.clone());
        }

        for step in &self.steps {
            match step {
                Step::With { target, with } => {
                    let mut out = match with.modarray_src {
                        Some(src) => store[src]
                            .as_ref()
                            .ok_or_else(|| SacError::Eval {
                                msg: format!("modarray source {src} not computed"),
                            })?
                            .clone(),
                        None => NdArray::filled(with.shape.clone(), with.default),
                    };
                    for gen in &with.generators {
                        let mut err = None;
                        gen.for_each_point(|iv| {
                            if err.is_some() {
                                return;
                            }
                            match gen.body.eval(iv, &store, ops) {
                                Ok(v) => {
                                    let ix: Vec<usize> = iv.iter().map(|&x| x as usize).collect();
                                    out.set_unchecked(&ix, v);
                                }
                                Err(e) => err = Some(e),
                            }
                        });
                        if let Some(e) = err {
                            return Err(e);
                        }
                    }
                    store[*target] = Some(out);
                }
                Step::Host { target, fun, bindings, .. } => {
                    let prog = crate::ast::Program { funs: vec![fun.clone()] };
                    let mut interp = Interp::new(&prog);
                    let args: Result<Vec<Value>, SacError> = bindings
                        .iter()
                        .map(|b| match b {
                            HostBinding::Array(id) => store[*id]
                                .as_ref()
                                .map(|a| Value::Arr(a.clone()))
                                .ok_or_else(|| SacError::Eval {
                                    msg: format!("host step input {id} not computed"),
                                }),
                            HostBinding::Const(v) => Ok(v.clone()),
                        })
                        .collect();
                    let out = interp.call(&fun.name, args?)?;
                    *ops += interp.ops;
                    store[*target] = Some(out.as_array()?.clone());
                }
            }
        }
        store[self.result]
            .take()
            .ok_or_else(|| SacError::Eval { msg: "result array never computed".into() })
    }
}

impl FlatProgram {
    /// Execute like [`FlatProgram::run`], but sweep each WITH-loop's lattice
    /// across `workers` threads (0 = available cores) — the shared-memory
    /// auto-parallelisation the paper credits SaC with ("almost linear
    /// speedups […] for shared memory systems").
    ///
    /// WITH-loop semantics make this safe without locks: generators write
    /// disjoint cells of a fresh result array per step (later generators win
    /// overlaps, preserved here by sweeping generators in order), so each
    /// worker fills its own slice of the lattice into a private write list
    /// that the coordinator applies in lattice order. Results are bit-equal
    /// to the sequential evaluator (tested below); host steps still run
    /// sequentially. `ops` is not counted (parallel runs are for speed).
    pub fn run_parallel(
        &self,
        inputs: &[NdArray<i64>],
        workers: usize,
    ) -> Result<NdArray<i64>, SacError> {
        let workers = if workers == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
        } else {
            workers
        };
        let mut store: Vec<Option<NdArray<i64>>> = vec![None; self.arrays.len()];
        if inputs.len() != self.inputs.len() {
            return Err(SacError::Eval {
                msg: format!("expected {} inputs, got {}", self.inputs.len(), inputs.len()),
            });
        }
        for (&id, arr) in self.inputs.iter().zip(inputs) {
            if arr.shape().dims() != self.arrays[id].shape.as_slice() {
                return Err(SacError::Eval {
                    msg: format!("input '{}' has the wrong shape", self.arrays[id].name),
                });
            }
            store[id] = Some(arr.clone());
        }

        for step in &self.steps {
            match step {
                Step::With { target, with } => {
                    let mut out = match with.modarray_src {
                        Some(src) => store[src]
                            .as_ref()
                            .ok_or_else(|| SacError::Eval {
                                msg: format!("modarray source {src} not computed"),
                            })?
                            .clone(),
                        None => NdArray::filled(with.shape.clone(), with.default),
                    };
                    let out_shape = mdarray::Shape::new(with.shape.clone());
                    for gen in &with.generators {
                        // Materialise the lattice once, then chunk it.
                        let mut points: Vec<Vec<i64>> = Vec::new();
                        gen.for_each_point(|iv| points.push(iv.to_vec()));
                        if points.is_empty() {
                            continue;
                        }
                        let chunk = points.len().div_ceil(workers.max(1));
                        let results: Vec<Result<Vec<(usize, i64)>, SacError>> =
                            std::thread::scope(|s| {
                                let store = &store;
                                let out_shape = &out_shape;
                                points
                                    .chunks(chunk)
                                    .map(|slice| {
                                        s.spawn(move || {
                                            let mut local = Vec::with_capacity(slice.len());
                                            let mut ops = 0u64;
                                            for iv in slice {
                                                let v = gen.body.eval(iv, store, &mut ops)?;
                                                let ix: Vec<usize> =
                                                    iv.iter().map(|&x| x as usize).collect();
                                                local.push((out_shape.offset_unchecked(&ix), v));
                                            }
                                            Ok(local)
                                        })
                                    })
                                    .collect::<Vec<_>>()
                                    .into_iter()
                                    .map(|h| h.join().expect("worker panicked"))
                                    .collect()
                            });
                        let slice = out.as_mut_slice();
                        for worker in results {
                            for (off, v) in worker? {
                                slice[off] = v;
                            }
                        }
                    }
                    store[*target] = Some(out);
                }
                Step::Host { target, fun, bindings, .. } => {
                    let prog = crate::ast::Program { funs: vec![fun.clone()] };
                    let mut interp = Interp::new(&prog);
                    let args: Result<Vec<Value>, SacError> = bindings
                        .iter()
                        .map(|b| match b {
                            HostBinding::Array(id) => store[*id]
                                .as_ref()
                                .map(|a| Value::Arr(a.clone()))
                                .ok_or_else(|| SacError::Eval {
                                    msg: format!("host step input {id} not computed"),
                                }),
                            HostBinding::Const(v) => Ok(v.clone()),
                        })
                        .collect();
                    let out = interp.call(&fun.name, args?)?;
                    store[*target] = Some(out.as_array()?.clone());
                }
            }
        }
        store[self.result]
            .take()
            .ok_or_else(|| SacError::Eval { msg: "result array never computed".into() })
    }
}

impl std::fmt::Display for FlatProgram {
    /// Render in SaC-like syntax — this reproduces the paper's Figure 8
    /// artefact when applied to the folded downscaler.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (id, a) in self.arrays.iter().enumerate() {
            if self.inputs.contains(&id) {
                writeln!(
                    f,
                    "int[{}] {};   // external input",
                    a.shape.iter().map(|d| d.to_string()).collect::<Vec<_>>().join(","),
                    a.name
                )?;
            }
        }
        for step in &self.steps {
            match step {
                Step::With { target, with } => {
                    let t = &self.arrays[*target];
                    writeln!(f, "{} = with {{", t.name)?;
                    for g in &with.generators {
                        let fmt_vec = |v: &[i64]| {
                            format!(
                                "[{}]",
                                v.iter().map(|x| x.to_string()).collect::<Vec<_>>().join(",")
                            )
                        };
                        write!(f, "  ( {} <= iv < {}", fmt_vec(&g.lower), fmt_vec(&g.upper))?;
                        if g.step.iter().any(|&s| s != 1) {
                            write!(f, " step {}", fmt_vec(&g.step))?;
                        }
                        if g.width.iter().any(|&w| w != 1) {
                            write!(f, " width {}", fmt_vec(&g.width))?;
                        }
                        writeln!(f, " ) : {};", self.fmt_sym(&g.body))?;
                    }
                    match with.modarray_src {
                        Some(src) => writeln!(f, "}} : modarray( {});", self.arrays[src].name)?,
                        None => writeln!(
                            f,
                            "}} : genarray( [{}], {});",
                            with.shape.iter().map(|d| d.to_string()).collect::<Vec<_>>().join(","),
                            with.default
                        )?,
                    }
                }
                Step::Host { target, reason, .. } => {
                    writeln!(f, "{} = <host step: {}>;", self.arrays[*target].name, reason)?;
                }
            }
        }
        writeln!(f, "return( {});", self.arrays[self.result].name)
    }
}

impl FlatProgram {
    fn fmt_sym(&self, e: &SymExpr) -> String {
        match e {
            SymExpr::Const(v) => v.to_string(),
            SymExpr::Idx(d) => format!("iv{d}"),
            SymExpr::Bin(op, l, r) => {
                let o = match op {
                    BinKind::Add => "+",
                    BinKind::Sub => "-",
                    BinKind::Mul => "*",
                    BinKind::Div => "/",
                    BinKind::Mod => "%",
                    BinKind::Lt => "<",
                    BinKind::Le => "<=",
                    BinKind::Gt => ">",
                    BinKind::Ge => ">=",
                    BinKind::Eq => "==",
                    BinKind::Ne => "!=",
                    BinKind::Concat => "++",
                };
                format!("({} {} {})", self.fmt_sym(l), o, self.fmt_sym(r))
            }
            SymExpr::Load { array, index } => {
                let name = self
                    .arrays
                    .get(*array)
                    .map(|a| a.name.clone())
                    .unwrap_or_else(|| format!("arr{array}"));
                format!(
                    "{name}[[{}]]",
                    index.iter().map(|e| self.fmt_sym(e)).collect::<Vec<_>>().join(", ")
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use BinKind::*;

    #[test]
    fn simplify_folds_constants_and_identities() {
        let e = SymExpr::bin(Add, SymExpr::Const(2), SymExpr::Const(3)).simplify();
        assert_eq!(e, SymExpr::Const(5));
        let e = SymExpr::bin(Mul, SymExpr::Idx(0), SymExpr::Const(1)).simplify();
        assert_eq!(e, SymExpr::Idx(0));
        let e = SymExpr::bin(Add, SymExpr::Idx(0), SymExpr::Const(0)).simplify();
        assert_eq!(e, SymExpr::Idx(0));
        let e = SymExpr::bin(Mul, SymExpr::Idx(0), SymExpr::Const(0)).simplify();
        assert_eq!(e, SymExpr::Const(0));
        // Euclidean mod in constant folding.
        let e = SymExpr::bin(Mod, SymExpr::Const(-1), SymExpr::Const(10)).simplify();
        assert_eq!(e, SymExpr::Const(9));
    }

    #[test]
    fn subst_replaces_index_vars() {
        let body = SymExpr::bin(Add, SymExpr::Idx(0), SymExpr::Idx(1));
        let s = body
            .subst_idx(&[SymExpr::Const(5), SymExpr::bin(Mul, SymExpr::Idx(0), SymExpr::Const(2))]);
        let v = s.eval(&[3], &[], &mut 0).unwrap();
        assert_eq!(v, 11);
    }

    #[test]
    fn flat_gen_point_counting() {
        let g = FlatGen {
            lower: vec![0, 1],
            upper: vec![2, 7],
            step: vec![1, 3],
            width: vec![1, 1],
            body: SymExpr::Const(0),
        };
        // dim0: 2 points; dim1: from 1 step 3 in [1,7): {1,4} = 2 points.
        assert_eq!(g.points(), 4);
        let mut seen = Vec::new();
        g.for_each_point(|iv| seen.push(iv.to_vec()));
        assert_eq!(seen.len(), 4);
        assert!(seen.contains(&vec![1, 4]));
    }

    #[test]
    fn dense_generator_covers_shape() {
        let g = FlatGen::dense(&[3, 4], SymExpr::Const(1));
        assert_eq!(g.points(), 12);
    }

    #[test]
    fn width_greater_than_one() {
        let g = FlatGen {
            lower: vec![0],
            upper: vec![10],
            step: vec![4],
            width: vec![2],
            body: SymExpr::Const(0),
        };
        // {0,1, 4,5, 8,9} = 6 points.
        assert_eq!(g.points(), 6);
        let mut seen = Vec::new();
        g.for_each_point(|iv| seen.push(iv[0]));
        assert_eq!(seen, vec![0, 1, 4, 5, 8, 9]);
    }

    #[test]
    fn run_executes_generators_in_order() {
        let mut p = FlatProgram::default();
        let a = p.declare("a", vec![4]);
        let out = p.declare("out", vec![4]);
        p.inputs.push(a);
        p.result = out;
        p.steps.push(Step::With {
            target: out,
            with: FlatWith {
                shape: vec![4],
                default: -1,
                modarray_src: None,
                generators: vec![
                    FlatGen::dense(
                        &[4],
                        SymExpr::bin(
                            Mul,
                            SymExpr::Load { array: a, index: vec![SymExpr::Idx(0)] },
                            SymExpr::Const(2),
                        ),
                    ),
                    FlatGen {
                        lower: vec![0],
                        upper: vec![1],
                        step: vec![1],
                        width: vec![1],
                        body: SymExpr::Const(99),
                    },
                ],
            },
        });
        let input = NdArray::from_vec([4usize], vec![1, 2, 3, 4]).unwrap();
        let mut ops = 0;
        let out = p.run(&[input], &mut ops).unwrap();
        assert_eq!(out.as_slice(), &[99, 4, 6, 8]);
        assert!(ops > 0);
    }

    #[test]
    fn run_validates_inputs() {
        let mut p = FlatProgram::default();
        let a = p.declare("a", vec![4]);
        p.inputs.push(a);
        p.result = a;
        assert!(p.run(&[], &mut 0).is_err());
        let wrong = NdArray::filled([5usize], 0i64);
        assert!(p.run(&[wrong], &mut 0).is_err());
    }

    #[test]
    fn parallel_run_matches_sequential() {
        let mut p = FlatProgram::default();
        let a = p.declare("a", vec![97]);
        let out = p.declare("out", vec![97]);
        p.inputs.push(a);
        p.result = out;
        p.steps.push(Step::With {
            target: out,
            with: FlatWith {
                shape: vec![97],
                default: -1,
                modarray_src: None,
                generators: vec![
                    FlatGen {
                        lower: vec![0],
                        upper: vec![97],
                        step: vec![2],
                        width: vec![1],
                        body: SymExpr::bin(
                            Mul,
                            SymExpr::Load { array: a, index: vec![SymExpr::Idx(0)] },
                            SymExpr::Const(3),
                        ),
                    },
                    FlatGen {
                        lower: vec![10],
                        upper: vec![40],
                        step: vec![1],
                        width: vec![1],
                        body: SymExpr::Const(5),
                    },
                ],
            },
        });
        let input = NdArray::from_fn([97usize], |ix| (ix[0] as i64) * 7 - 100);
        let seq = p.run(std::slice::from_ref(&input), &mut 0).unwrap();
        for workers in [1usize, 3, 8] {
            let par = p.run_parallel(std::slice::from_ref(&input), workers).unwrap();
            assert_eq!(par, seq, "workers = {workers}");
        }
        // Default worker count.
        assert_eq!(p.run_parallel(&[input], 0).unwrap(), seq);
    }

    #[test]
    fn parallel_run_validates_inputs() {
        let mut p = FlatProgram::default();
        let a = p.declare("a", vec![4]);
        p.inputs.push(a);
        p.result = a;
        assert!(p.run_parallel(&[], 2).is_err());
    }

    #[test]
    fn display_renders_sac_like_text() {
        let mut p = FlatProgram::default();
        let a = p.declare("in_frame", vec![4, 8]);
        let out = p.declare("output", vec![4, 8]);
        p.inputs.push(a);
        p.result = out;
        p.steps.push(Step::With {
            target: out,
            with: FlatWith {
                shape: vec![4, 8],
                default: 0,
                modarray_src: None,
                generators: vec![FlatGen {
                    lower: vec![0, 1],
                    upper: vec![4, 8],
                    step: vec![1, 3],
                    width: vec![1, 1],
                    body: SymExpr::Load { array: a, index: vec![SymExpr::Idx(0), SymExpr::Idx(1)] },
                }],
            },
        });
        let text = p.to_string();
        assert!(text.contains("output = with {"), "{text}");
        assert!(text.contains("( [0,1] <= iv < [4,8] step [1,3] )"), "{text}");
        assert!(text.contains("in_frame[[iv0, iv1]]"), "{text}");
        assert!(text.contains("genarray( [4,8], 0)"), "{text}");
    }
}
