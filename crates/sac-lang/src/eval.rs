//! The reference interpreter for the SaC subset.
//!
//! This is the semantic oracle of the workspace: the optimiser and both GPU
//! backends are tested against it. It also counts abstract operations
//! (`ops`), which the benchmark harness multiplies by a calibrated per-op cost
//! to model the paper's *SAC-Seq* sequential executions.

use crate::ast::*;
use crate::builtins::{call_builtin, is_builtin};
use crate::value::{assign_vec, broadcast2, euclid_mod, select_vec, trunc_div, Value};
use crate::SacError;
use mdarray::NdArray;
use std::collections::HashMap;

/// Maximum user-function call depth (SaC programs here are non-recursive;
/// the limit guards against accidental cycles).
const MAX_CALL_DEPTH: usize = 64;

/// Interpreter state over a parsed program.
pub struct Interp<'p> {
    prog: &'p Program,
    scopes: Vec<HashMap<String, Value>>,
    call_depth: usize,
    /// Abstract operations executed (AST node evaluations).
    pub ops: u64,
}

impl<'p> Interp<'p> {
    /// Create an interpreter for `prog`.
    pub fn new(prog: &'p Program) -> Self {
        Interp { prog, scopes: vec![HashMap::new()], call_depth: 0, ops: 0 }
    }

    /// Call function `name` with `args` and return its result.
    pub fn call(&mut self, name: &str, args: Vec<Value>) -> Result<Value, SacError> {
        if is_builtin(name) {
            self.ops += 1;
            return call_builtin(name, &args);
        }
        let f = self
            .prog
            .fun(name)
            .ok_or_else(|| SacError::Eval { msg: format!("unknown function '{name}'") })?;
        if f.params.len() != args.len() {
            return Err(SacError::Eval {
                msg: format!(
                    "function '{name}' expects {} arguments, got {}",
                    f.params.len(),
                    args.len()
                ),
            });
        }
        if self.call_depth >= MAX_CALL_DEPTH {
            return Err(SacError::Eval { msg: format!("call depth exceeded calling '{name}'") });
        }
        for ((ann, pname), arg) in f.params.iter().zip(&args) {
            crate::types::check_value(ann, arg).map_err(|msg| SacError::Eval {
                msg: format!("argument '{pname}' of '{name}': {msg}"),
            })?;
        }

        // Fresh scope stack: callee does not see caller locals.
        let mut scope = HashMap::new();
        for ((_, pname), arg) in f.params.iter().zip(args) {
            scope.insert(pname.clone(), arg);
        }
        let saved = std::mem::replace(&mut self.scopes, vec![scope]);
        self.call_depth += 1;
        let result = self.exec_stmts(&f.body);
        self.call_depth -= 1;
        self.scopes = saved;

        match result? {
            Some(v) => {
                crate::types::check_value(&f.ret, &v).map_err(|msg| SacError::Eval {
                    msg: format!("return value of '{name}': {msg}"),
                })?;
                Ok(v)
            }
            None => Err(SacError::Eval { msg: format!("function '{name}' did not return") }),
        }
    }

    // ---- environment ---------------------------------------------------

    fn lookup(&self, name: &str) -> Option<&Value> {
        self.scopes.iter().rev().find_map(|s| s.get(name))
    }

    /// Assign: update where found, else define in the innermost scope.
    fn assign(&mut self, name: &str, value: Value) {
        for s in self.scopes.iter_mut().rev() {
            if let Some(slot) = s.get_mut(name) {
                *slot = value;
                return;
            }
        }
        self.scopes.last_mut().expect("scope stack").insert(name.to_string(), value);
    }

    fn lookup_mut(&mut self, name: &str) -> Option<&mut Value> {
        self.scopes.iter_mut().rev().find_map(|s| s.get_mut(name))
    }

    // ---- statements ----------------------------------------------------

    fn exec_stmts(&mut self, stmts: &[Stmt]) -> Result<Option<Value>, SacError> {
        for s in stmts {
            self.ops += 1;
            match s {
                Stmt::Assign(LValue::Var(name), e) => {
                    let v = self.eval(e)?;
                    self.assign(name, v);
                }
                Stmt::Assign(LValue::Index(name, ix), e) => {
                    let ixv = self.eval(ix)?;
                    let index = match &ixv {
                        Value::Int(i) => vec![*i],
                        Value::Arr(_) => ixv.as_ivec()?,
                    };
                    let value = self.eval(e)?;
                    let target = self.lookup_mut(name).ok_or_else(|| SacError::Eval {
                        msg: format!("indexed assignment to unknown variable '{name}'"),
                    })?;
                    match target {
                        Value::Arr(a) => assign_vec(a, &index, &value)?,
                        Value::Int(_) => {
                            return Err(SacError::Eval {
                                msg: format!("cannot index-assign scalar '{name}'"),
                            })
                        }
                    }
                }
                Stmt::For { var, init, limit, body } => {
                    let mut i = self.eval(init)?.as_int()?;
                    // Re-evaluate the limit each iteration, as C would; the
                    // paper's loops have invariant limits so this is benign.
                    loop {
                        let lim = self.eval(limit)?.as_int()?;
                        if i >= lim {
                            break;
                        }
                        self.scopes.push(HashMap::new());
                        self.assign_innermost(var, Value::Int(i));
                        let r = self.exec_stmts(body);
                        self.scopes.pop();
                        if let Some(v) = r? {
                            return Ok(Some(v));
                        }
                        i += 1;
                    }
                }
                Stmt::Return(e) => {
                    let v = self.eval(e)?;
                    return Ok(Some(v));
                }
            }
        }
        Ok(None)
    }

    fn assign_innermost(&mut self, name: &str, value: Value) {
        self.scopes.last_mut().expect("scope stack").insert(name.to_string(), value);
    }

    // ---- expressions ---------------------------------------------------

    /// Evaluate an expression in the current scope stack.
    pub fn eval(&mut self, e: &Expr) -> Result<Value, SacError> {
        self.ops += 1;
        match e {
            Expr::Int(v) => Ok(Value::Int(*v)),
            Expr::Var(name) => self
                .lookup(name)
                .cloned()
                .ok_or_else(|| SacError::Eval { msg: format!("unknown variable '{name}'") }),
            Expr::VecLit(elems) => {
                let vals: Result<Vec<Value>, _> = elems.iter().map(|e| self.eval(e)).collect();
                let vals = vals?;
                if vals.iter().all(|v| matches!(v, Value::Int(_))) {
                    Ok(Value::from_ivec(vals.iter().map(|v| v.as_int()).collect::<Result<_, _>>()?))
                } else {
                    // Matrix literal: rows must be equal-length vectors.
                    let rows: Result<Vec<Vec<i64>>, _> = vals.iter().map(|v| v.as_ivec()).collect();
                    let rows = rows?;
                    let cols = rows.first().map_or(0, |r| r.len());
                    if rows.iter().any(|r| r.len() != cols) {
                        return Err(SacError::Eval { msg: "ragged matrix literal".into() });
                    }
                    let data: Vec<i64> = rows.into_iter().flatten().collect();
                    Ok(Value::Arr(
                        NdArray::from_vec([vals.len(), cols], data).expect("length matches"),
                    ))
                }
            }
            Expr::Neg(inner) => {
                let v = self.eval(inner)?;
                broadcast2(&Value::Int(0), &v, |a, b| Ok(a - b))
            }
            Expr::Bin(op, l, r) => {
                let lv = self.eval(l)?;
                let rv = self.eval(r)?;
                self.binop(*op, &lv, &rv)
            }
            Expr::Call(name, args) => {
                // Fast path: `shape(x)` / `dim(x)` on a variable avoid cloning
                // the (possibly frame-sized) array just to read its extents.
                if let [Expr::Var(n)] = args.as_slice() {
                    if name == "shape" || name == "dim" {
                        self.ops += 1;
                        let v = self.lookup(n).ok_or_else(|| SacError::Eval {
                            msg: format!("unknown variable '{n}'"),
                        })?;
                        return Ok(if name == "shape" {
                            Value::from_ivec(v.shape_vec().into_iter().map(|d| d as i64).collect())
                        } else {
                            Value::Int(v.rank() as i64)
                        });
                    }
                }
                let vals: Result<Vec<Value>, _> = args.iter().map(|a| self.eval(a)).collect();
                self.call(name, vals?)
            }
            Expr::Select(arr, ix) => {
                let iv = self.eval(ix)?;
                let index = match &iv {
                    Value::Int(i) => vec![*i],
                    Value::Arr(_) => iv.as_ivec()?,
                };
                // Fast path: selecting from a variable borrows the stored
                // array instead of cloning it (critical for the generic
                // output tiler's scatter nest, whose inner loop reads one
                // element of a frame-sized intermediate per iteration).
                if let Expr::Var(n) = &**arr {
                    let a = self
                        .lookup(n)
                        .ok_or_else(|| SacError::Eval { msg: format!("unknown variable '{n}'") })?;
                    return select_vec(a.as_array()?, &index);
                }
                let a = self.eval(arr)?;
                select_vec(a.as_array()?, &index)
            }
            Expr::With(w) => self.eval_with(w),
            Expr::Block(stmts, result) => {
                self.scopes.push(HashMap::new());
                let r = (|| {
                    if self.exec_stmts(stmts)?.is_some() {
                        return Err(SacError::Eval {
                            msg: "return inside expression block".into(),
                        });
                    }
                    self.eval(result)
                })();
                self.scopes.pop();
                r
            }
        }
    }

    fn binop(&mut self, op: BinKind, l: &Value, r: &Value) -> Result<Value, SacError> {
        fold_binop(op, l, r)
    }

    // ---- WITH-loops ----------------------------------------------------

    fn eval_with(&mut self, w: &WithLoop) -> Result<Value, SacError> {
        if let WithOp::Fold { fun, neutral } = &w.op {
            return self.eval_fold(w, fun, neutral);
        }
        // Determine the frame (index-space) shape.
        let (frame, mut result, mut cell_dims): (
            Vec<usize>,
            Option<NdArray<i64>>,
            Option<Vec<usize>>,
        ) = match &w.op {
            WithOp::Genarray { shape, default } => {
                let frame = self.eval(shape)?.as_shape()?;
                match default {
                    Some(d) => {
                        let dv = self.eval(d)?;
                        let cd = dv.shape_vec();
                        let mut dims = frame.clone();
                        dims.extend_from_slice(&cd);
                        let fill = match &dv {
                            Value::Int(v) => NdArray::filled(dims, *v),
                            Value::Arr(cell) => {
                                let n: usize = frame.iter().product();
                                let mut data = Vec::with_capacity(n * cell.len());
                                for _ in 0..n {
                                    data.extend_from_slice(cell.as_slice());
                                }
                                NdArray::from_vec(dims, data).expect("length matches")
                            }
                        };
                        (frame, Some(fill), Some(cd))
                    }
                    None => (frame, None, None),
                }
            }
            WithOp::Modarray(src) => {
                let base = self.eval(src)?;
                let base = base.as_array()?.clone();
                let rank = self.infer_gen_rank(w)?.ok_or_else(|| SacError::Eval {
                    msg: "cannot infer generator rank for modarray with-loop".into(),
                })?;
                if rank > base.rank() {
                    return Err(SacError::Eval {
                        msg: format!(
                            "generator rank {rank} exceeds modarray base rank {}",
                            base.rank()
                        ),
                    });
                }
                let frame = base.shape().dims()[..rank].to_vec();
                let cd = base.shape().dims()[rank..].to_vec();
                (frame, Some(base), Some(cd))
            }
            WithOp::Fold { .. } => unreachable!("fold handled by eval_fold"),
        };

        for gen in &w.generators {
            let region = self.gen_region(gen, &frame)?;
            let mut iv = region.lower.clone();
            if region.is_empty() {
                continue;
            }
            loop {
                if region.contains_lattice(&iv) {
                    self.scopes.push(HashMap::new());
                    let cell = (|| {
                        self.bind_gen_var(&gen.var, &iv)?;
                        if self.exec_stmts(&gen.body)?.is_some() {
                            return Err(SacError::Eval {
                                msg: "return inside generator body".into(),
                            });
                        }
                        self.eval(&gen.yield_expr)
                    })();
                    self.scopes.pop();
                    let cell = cell?;

                    // Lazily allocate the result once the cell shape is known.
                    if result.is_none() {
                        let cd = cell.shape_vec();
                        let mut dims = frame.clone();
                        dims.extend_from_slice(&cd);
                        result = Some(NdArray::filled(dims, 0i64));
                        cell_dims = Some(cd);
                    }
                    let out = result.as_mut().expect("allocated above");
                    let expected = cell_dims.as_ref().expect("set with result");
                    if &cell.shape_vec() != expected {
                        return Err(SacError::Eval {
                            msg: format!(
                                "generator cell shape {:?} differs from with-loop cell shape {:?}",
                                cell.shape_vec(),
                                expected
                            ),
                        });
                    }
                    assign_vec(out, &iv, &cell)?;
                }
                if !region.advance(&mut iv) {
                    break;
                }
            }
        }

        let result = match result {
            Some(r) => r,
            // Nothing covered and no default: an all-zero scalar-celled array.
            None => NdArray::filled(frame, 0i64),
        };
        Ok(Value::Arr(result))
    }

    /// `fold(fun, neutral)`: reduce scalar cells with an associative builtin.
    /// Fold generators need explicit bounds (there is no result frame to
    /// give `.` a meaning).
    fn eval_fold(&mut self, w: &WithLoop, fun: &str, neutral: &Expr) -> Result<Value, SacError> {
        let mut acc = self.eval(neutral)?.as_int()?;
        let combine = |a: i64, b: i64| -> Result<i64, SacError> {
            Ok(match fun {
                "+" => a.wrapping_add(b),
                "*" => a.wrapping_mul(b),
                "min" => a.min(b),
                "max" => a.max(b),
                other => {
                    return Err(SacError::Eval { msg: format!("unknown fold function '{other}'") })
                }
            })
        };
        for gen in &w.generators {
            if gen.lower.is_none() || gen.upper.is_none() {
                return Err(SacError::Eval { msg: "fold generators need explicit bounds".into() });
            }
            // Bound ranks are self-describing; use the lower bound's length.
            let rank = self.eval(gen.lower.as_ref().expect("checked"))?.as_ivec()?.len();
            let frame = vec![i64::MAX as usize; rank]; // no frame limit for fold
            let region = self.gen_region_unbounded(gen, &frame)?;
            let mut iv = region.lower.clone();
            if region.is_empty() {
                continue;
            }
            loop {
                if region.contains_lattice(&iv) {
                    self.scopes.push(HashMap::new());
                    let cell = (|| {
                        self.bind_gen_var(&gen.var, &iv)?;
                        if self.exec_stmts(&gen.body)?.is_some() {
                            return Err(SacError::Eval {
                                msg: "return inside generator body".into(),
                            });
                        }
                        self.eval(&gen.yield_expr)
                    })();
                    self.scopes.pop();
                    acc = combine(acc, cell?.as_int()?)?;
                }
                if !region.advance(&mut iv) {
                    break;
                }
            }
        }
        Ok(Value::Int(acc))
    }

    /// Like `gen_region` but without requiring the range to sit inside a
    /// result frame (fold has none).
    fn gen_region_unbounded(
        &mut self,
        gen: &Generator,
        frame: &[usize],
    ) -> Result<Region, SacError> {
        let rank = frame.len();
        let ones = vec![1i64; rank];
        let lower = match &gen.lower {
            Some(e) => self.eval_bound(e, rank, "lower")?,
            None => vec![0i64; rank],
        };
        let upper = match &gen.upper {
            Some(e) => {
                let mut u = self.eval_bound(e, rank, "upper")?;
                if gen.upper_inclusive {
                    u.iter_mut().for_each(|x| *x += 1);
                }
                u
            }
            None => frame.iter().map(|&d| d as i64).collect(),
        };
        let step = match &gen.step {
            Some(e) => self.eval_bound(e, rank, "step")?,
            None => ones.clone(),
        };
        let width = match &gen.width {
            Some(e) => self.eval_bound(e, rank, "width")?,
            None => ones,
        };
        for d in 0..rank {
            if step[d] < 1 || width[d] < 1 || width[d] > step[d] {
                return Err(SacError::Eval {
                    msg: format!("invalid step/width {:?}/{:?}", step, width),
                });
            }
        }
        Ok(Region { lower, upper, step, width })
    }

    /// Try to infer the generator index-space rank from bounds, step or the
    /// destructured variable.
    fn infer_gen_rank(&mut self, w: &WithLoop) -> Result<Option<usize>, SacError> {
        for gen in &w.generators {
            if let Some(r) = gen.var.rank() {
                return Ok(Some(r));
            }
            for e in [&gen.lower, &gen.upper, &gen.step, &gen.width].into_iter().flatten() {
                let v = self.eval(e)?;
                if let Value::Arr(a) = &v {
                    if a.rank() == 1 {
                        return Ok(Some(a.len()));
                    }
                }
            }
        }
        Ok(None)
    }

    fn gen_region(&mut self, gen: &Generator, frame: &[usize]) -> Result<Region, SacError> {
        let rank = frame.len();
        let ones = vec![1i64; rank];
        let lower = match &gen.lower {
            Some(e) => self.eval_bound(e, rank, "lower")?,
            None => vec![0i64; rank],
        };
        let upper = match &gen.upper {
            Some(e) => {
                let mut u = self.eval_bound(e, rank, "upper")?;
                if gen.upper_inclusive {
                    u.iter_mut().for_each(|x| *x += 1);
                }
                u
            }
            None => frame.iter().map(|&d| d as i64).collect(),
        };
        let step = match &gen.step {
            Some(e) => self.eval_bound(e, rank, "step")?,
            None => ones.clone(),
        };
        let width = match &gen.width {
            Some(e) => self.eval_bound(e, rank, "width")?,
            None => ones,
        };
        for d in 0..rank {
            if lower[d] < 0 || upper[d] > frame[d] as i64 {
                return Err(SacError::Eval {
                    msg: format!(
                        "generator range [{:?},{:?}) outside frame {:?}",
                        lower, upper, frame
                    ),
                });
            }
            if step[d] < 1 || width[d] < 1 || width[d] > step[d] {
                return Err(SacError::Eval {
                    msg: format!("invalid step/width {:?}/{:?}", step, width),
                });
            }
        }
        Ok(Region { lower, upper, step, width })
    }

    fn eval_bound(&mut self, e: &Expr, rank: usize, what: &str) -> Result<Vec<i64>, SacError> {
        let v = self.eval(e)?;
        let vec = match v {
            Value::Int(x) if rank == 1 => vec![x],
            other => other.as_ivec()?,
        };
        if vec.len() != rank {
            return Err(SacError::Eval {
                msg: format!("{what} bound has {} components, frame rank is {rank}", vec.len()),
            });
        }
        Ok(vec)
    }

    fn bind_gen_var(&mut self, var: &GenVar, iv: &[i64]) -> Result<(), SacError> {
        match var {
            GenVar::Name(name) => {
                self.assign_innermost(name, Value::from_ivec(iv.to_vec()));
            }
            GenVar::Components(names) => {
                if names.len() != iv.len() {
                    return Err(SacError::Eval {
                        msg: format!(
                            "generator variable has {} components, index has {}",
                            names.len(),
                            iv.len()
                        ),
                    });
                }
                for (n, &x) in names.iter().zip(iv) {
                    self.assign_innermost(n, Value::Int(x));
                }
            }
        }
        Ok(())
    }
}

/// Evaluate a binary operation on values (shared with the constant folder).
pub fn fold_binop(op: BinKind, l: &Value, r: &Value) -> Result<Value, SacError> {
    match op {
        BinKind::Add => broadcast2(l, r, |a, b| Ok(a.wrapping_add(b))),
        BinKind::Sub => broadcast2(l, r, |a, b| Ok(a.wrapping_sub(b))),
        BinKind::Mul => broadcast2(l, r, |a, b| Ok(a.wrapping_mul(b))),
        BinKind::Div => broadcast2(l, r, trunc_div),
        BinKind::Mod => broadcast2(l, r, euclid_mod),
        BinKind::Lt => broadcast2(l, r, |a, b| Ok((a < b) as i64)),
        BinKind::Le => broadcast2(l, r, |a, b| Ok((a <= b) as i64)),
        BinKind::Gt => broadcast2(l, r, |a, b| Ok((a > b) as i64)),
        BinKind::Ge => broadcast2(l, r, |a, b| Ok((a >= b) as i64)),
        BinKind::Eq => broadcast2(l, r, |a, b| Ok((a == b) as i64)),
        BinKind::Ne => broadcast2(l, r, |a, b| Ok((a != b) as i64)),
        BinKind::Concat => {
            let lv = l.as_ivec()?;
            let rv = r.as_ivec()?;
            let mut out = lv;
            out.extend(rv);
            Ok(Value::from_ivec(out))
        }
    }
}

/// A generator's index region: box bounds plus step/width lattice filter.
struct Region {
    lower: Vec<i64>,
    upper: Vec<i64>,
    step: Vec<i64>,
    width: Vec<i64>,
}

impl Region {
    fn is_empty(&self) -> bool {
        self.lower.iter().zip(&self.upper).any(|(l, u)| l >= u)
    }

    /// Is `iv` on the step/width lattice? (`iv` is already inside the box.)
    fn contains_lattice(&self, iv: &[i64]) -> bool {
        iv.iter()
            .zip(&self.lower)
            .zip(self.step.iter().zip(&self.width))
            .all(|((x, l), (s, w))| (x - l).rem_euclid(*s) < *w)
    }

    /// Odometer increment within the box; false when exhausted.
    fn advance(&self, iv: &mut [i64]) -> bool {
        for d in (0..iv.len()).rev() {
            iv[d] += 1;
            if iv[d] < self.upper[d] {
                return true;
            }
            iv[d] = self.lower[d];
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn run(src: &str, fun: &str, args: Vec<Value>) -> Value {
        let prog = parse_program(src).unwrap();
        let mut interp = Interp::new(&prog);
        interp.call(fun, args).unwrap()
    }

    fn arr2(rows: usize, cols: usize, f: impl Fn(usize, usize) -> i64) -> Value {
        Value::Arr(NdArray::from_fn([rows, cols], |ix| f(ix[0], ix[1])))
    }

    #[test]
    fn scalar_function() {
        let v = run("int f(int x) { y = x * 2 + 1; return( y); }", "f", vec![Value::Int(20)]);
        assert_eq!(v, Value::Int(41));
    }

    #[test]
    fn genarray_identity() {
        let src = r#"
int[*] id(int[.,.] a)
{
    out = with { (. <= iv <= .) : a[iv]; } : genarray( shape(a), 0);
    return( out);
}
"#;
        let input = arr2(3, 4, |i, j| (i * 4 + j) as i64);
        let v = run(src, "id", vec![input.clone()]);
        assert_eq!(v, input);
    }

    #[test]
    fn genarray_with_step_width() {
        // Zero everything except columns where j % 3 == 1.
        let src = r#"
int[*] pick(int[2,6] a)
{
    out = with { ([0,1] <= iv < [2,6] step [1,3] width [1,1]) : a[iv]; } : genarray( [2,6], 0);
    return( out);
}
"#;
        let input = arr2(2, 6, |_, _| 7);
        let v = run(src, "pick", vec![input]);
        let out = v.as_array().unwrap();
        for i in 0..2 {
            for j in 0..6 {
                let expect = if j % 3 == 1 { 7 } else { 0 };
                assert_eq!(*out.get(&[i, j]).unwrap(), expect, "at ({i},{j})");
            }
        }
    }

    #[test]
    fn later_generators_win_overlaps() {
        let src = r#"
int[*] f()
{
    out = with {
        ([0] <= iv < [4]) : 1;
        ([1] <= iv < [3]) : 2;
    } : genarray( [4], 0);
    return( out);
}
"#;
        let v = run(src, "f", vec![]);
        assert_eq!(v.as_array().unwrap().as_slice(), &[1, 2, 2, 1]);
    }

    #[test]
    fn modarray_updates_cells() {
        let src = r#"
int[*] f(int[.,.] a)
{
    out = with { ([0,0] <= [i,j] < [1,3]) : 99; } : modarray( a);
    return( out);
}
"#;
        let v = run(src, "f", vec![arr2(2, 3, |i, j| (i * 3 + j) as i64)]);
        assert_eq!(v.as_array().unwrap().as_slice(), &[99, 99, 99, 3, 4, 5]);
    }

    #[test]
    fn nested_with_builds_tiles() {
        // Outer over [2], inner builds [3]-tiles: result [2,3].
        let src = r#"
int[*] f()
{
    out = with {
        (. <= rep <= .) {
            tile = with { (. <= pat <= .) : rep[0] * 10 + pat[0]; } : genarray( [3], 0);
        } : tile;
    } : genarray( [2]);
    return( out);
}
"#;
        let v = run(src, "f", vec![]);
        let a = v.as_array().unwrap();
        assert_eq!(a.shape().dims(), &[2, 3]);
        assert_eq!(a.as_slice(), &[0, 1, 2, 10, 11, 12]);
    }

    #[test]
    fn for_loop_scatter() {
        let src = r#"
int[*] f(int[4] out)
{
    for( i=0; i< 4; i++) {
        out[[i]] = i * i;
    }
    return( out);
}
"#;
        let v = run(src, "f", vec![Value::Arr(NdArray::filled([4usize], 0i64))]);
        assert_eq!(v.as_array().unwrap().as_slice(), &[0, 1, 4, 9]);
    }

    #[test]
    fn user_function_calls_and_vector_ops() {
        let src = r#"
int[.] off(int[.] origin, int[.,.] paving, int[.,.] fitting, int[.] rep, int[.] pat)
{
    o = origin + MV( CAT( paving, fitting), rep ++ pat);
    return( o);
}
"#;
        let paving = Value::Arr(NdArray::from_vec([2usize, 2], vec![1, 0, 0, 8]).unwrap());
        let fitting = Value::Arr(NdArray::from_vec([2usize, 1], vec![0, 1]).unwrap());
        let v = run(
            src,
            "off",
            vec![
                Value::from_ivec(vec![0, 0]),
                paving,
                fitting,
                Value::from_ivec(vec![2, 3]),
                Value::from_ivec(vec![5]),
            ],
        );
        // o = P.(2,3) + F.(5) = (2, 24) + (0, 5) = (2, 29)
        assert_eq!(v.as_ivec().unwrap(), vec![2, 29]);
    }

    #[test]
    fn euclidean_mod_in_language() {
        let v = run("int f(int x) { return( x % 10); }", "f", vec![Value::Int(-3)]);
        assert_eq!(v, Value::Int(7));
    }

    #[test]
    fn tile_local_array_writes() {
        // The paper's task-function idiom: build a tile by indexed writes.
        let src = r#"
int[.] f()
{
    tile = with { (. <= iv <= .) : 0; } : genarray( [3]);
    tile[0] = 11;
    tile[1] = 22;
    tile[2] = 33;
    return( tile);
}
"#;
        let v = run(src, "f", vec![]);
        assert_eq!(v.as_array().unwrap().as_slice(), &[11, 22, 33]);
    }

    #[test]
    fn op_counter_increases() {
        let prog = parse_program("int f(int x) { return( x + 1); }").unwrap();
        let mut i = Interp::new(&prog);
        i.call("f", vec![Value::Int(1)]).unwrap();
        let first = i.ops;
        i.call("f", vec![Value::Int(1)]).unwrap();
        assert_eq!(i.ops, first * 2);
        assert!(first > 0);
    }

    #[test]
    fn errors_are_reported() {
        let prog = parse_program("int f(int x) { return( x / 0); }").unwrap();
        let mut i = Interp::new(&prog);
        assert!(matches!(i.call("f", vec![Value::Int(1)]), Err(SacError::Eval { .. })));

        let prog = parse_program("int f() { return( nosuch(1)); }").unwrap();
        let mut i = Interp::new(&prog);
        assert!(i.call("f", vec![]).is_err());

        // Arity error.
        let prog = parse_program("int f(int x) { return( x); }").unwrap();
        let mut i = Interp::new(&prog);
        assert!(i.call("f", vec![]).is_err());
    }

    #[test]
    fn out_of_frame_generator_rejected() {
        let src = r#"
int[*] f()
{
    out = with { ([0] <= iv < [9]) : 1; } : genarray( [4], 0);
    return( out);
}
"#;
        let prog = parse_program(src).unwrap();
        let mut i = Interp::new(&prog);
        assert!(i.call("f", vec![]).is_err());
    }
}

#[cfg(test)]
mod fold_tests {
    use super::*;
    use crate::parser::parse_program;

    fn run(src: &str, args: Vec<Value>) -> Result<Value, SacError> {
        let prog = parse_program(src)?;
        crate::types::check_program(&prog)?;
        Interp::new(&prog).call("main", args)
    }

    #[test]
    fn fold_sums_over_a_range() {
        let src = r#"
int main(int[8] a)
{
    s = with { ([0] <= iv < [8]) : a[iv]; } : fold( +, 0);
    return( s);
}
"#;
        let a = Value::Arr(NdArray::from_fn([8usize], |ix| ix[0] as i64 + 1));
        assert_eq!(run(src, vec![a]).unwrap(), Value::Int(36));
    }

    #[test]
    fn fold_max_with_step_filter() {
        let src = r#"
int main(int[10] a)
{
    m = with { ([1] <= iv < [10] step [2]) : a[iv]; } : fold( max, 0 - 1000);
    return( m);
}
"#;
        // Odd indices of [0, 10, 20, ...]: max = a[9] = 90.
        let a = Value::Arr(NdArray::from_fn([10usize], |ix| ix[0] as i64 * 10));
        assert_eq!(run(src, vec![a]).unwrap(), Value::Int(90));
    }

    #[test]
    fn fold_product_and_min_2d() {
        let src = r#"
int main()
{
    p = with { ([0,0] <= [i,j] < [2,3]) : i + j + 1; } : fold( *, 1);
    return( p);
}
"#;
        // Cells: 1,2,3,2,3,4 -> product 144.
        assert_eq!(run(src, vec![]).unwrap(), Value::Int(144));
    }

    #[test]
    fn fold_requires_explicit_bounds() {
        let src = r#"
int main(int[4] a)
{
    s = with { (. <= iv <= .) : a[iv]; } : fold( +, 0);
    return( s);
}
"#;
        let a = Value::Arr(NdArray::filled([4usize], 1i64));
        assert!(run(src, vec![a]).is_err());
    }

    #[test]
    fn fold_rejects_array_cells() {
        let src = r#"
int main(int[2,3] a)
{
    s = with { ([0] <= iv < [2]) : a[iv]; } : fold( +, 0);
    return( s);
}
"#;
        let a = Value::Arr(NdArray::filled([2usize, 3], 1i64));
        assert!(run(src, vec![a]).is_err());
    }

    #[test]
    fn fold_is_not_lowerable_and_reports_cleanly() {
        let src = r#"
int main(int[4] a)
{
    s = with { ([0] <= iv < [4]) : a[iv]; } : fold( +, 0);
    return( s);
}
"#;
        let prog = parse_program(src).unwrap();
        let err = crate::opt::optimize(
            &prog,
            "main",
            &[crate::opt::ArgDesc::Array { name: "a".into(), shape: vec![4] }],
            &Default::default(),
        )
        .unwrap_err();
        assert!(
            matches!(err, SacError::NotLowerable { ref construct, .. } if construct == "fold"),
            "{err:?}"
        );
    }

    #[test]
    fn fold_pretty_prints_and_reparses() {
        let src = r#"
int main(int[4] a)
{
    s = with { ([0] <= iv < [4]) : a[iv] * 2; } : fold( +, 5);
    return( s);
}
"#;
        let p1 = parse_program(src).unwrap();
        let printed = crate::pretty::print_program(&p1);
        let p2 = parse_program(&printed).unwrap_or_else(|e| panic!("{e}\n{printed}"));
        assert_eq!(p1, p2);
    }
}
