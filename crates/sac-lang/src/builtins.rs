//! Builtin functions of the SaC subset.
//!
//! Besides standard SaC intrinsics (`shape`, `dim`), the paper's code uses two
//! helpers it describes as "functions performing matrix-vector multiplication
//! and array concatenation respectively": `MV` and `CAT`.

use crate::value::Value;
use crate::SacError;
use mdarray::NdArray;

/// Is `name` a builtin? (Builtins shadow user functions.)
pub fn is_builtin(name: &str) -> bool {
    matches!(name, "shape" | "dim" | "MV" | "CAT" | "min" | "max" | "abs" | "sum" | "genarray")
}

/// Evaluate builtin `name` on `args`.
pub fn call_builtin(name: &str, args: &[Value]) -> Result<Value, SacError> {
    let arity = |n: usize| -> Result<(), SacError> {
        if args.len() != n {
            Err(SacError::Eval {
                msg: format!("builtin '{name}' expects {n} arguments, got {}", args.len()),
            })
        } else {
            Ok(())
        }
    };
    match name {
        "shape" => {
            arity(1)?;
            let dims = args[0].shape_vec();
            Ok(Value::from_ivec(dims.into_iter().map(|d| d as i64).collect()))
        }
        "dim" => {
            arity(1)?;
            Ok(Value::Int(args[0].rank() as i64))
        }
        "MV" => {
            arity(2)?;
            mv(&args[0], &args[1])
        }
        "CAT" => {
            arity(2)?;
            cat(&args[0], &args[1])
        }
        "min" => {
            arity(2)?;
            Ok(Value::Int(args[0].as_int()?.min(args[1].as_int()?)))
        }
        "max" => {
            arity(2)?;
            Ok(Value::Int(args[0].as_int()?.max(args[1].as_int()?)))
        }
        "abs" => {
            arity(1)?;
            Ok(Value::Int(args[0].as_int()?.abs()))
        }
        "sum" => {
            arity(1)?;
            let a = args[0].as_array()?;
            Ok(Value::Int(a.as_slice().iter().sum()))
        }
        "genarray" => {
            if args.len() != 1 && args.len() != 2 {
                return Err(SacError::Eval {
                    msg: format!("genarray expects 1 or 2 arguments, got {}", args.len()),
                });
            }
            let shape = args[0]
                .as_shape()
                .map_err(|e| SacError::Eval { msg: format!("genarray shape: {e}") })?;
            let fill = match args.get(1) {
                Some(v) => v.as_int()?,
                None => 0,
            };
            Ok(Value::Arr(NdArray::filled(shape, fill)))
        }
        other => Err(SacError::Eval { msg: format!("unknown builtin '{other}'") }),
    }
}

/// Matrix–vector product: `MV(m, v)[r] = sum_c m[r,c] * v[c]`.
fn mv(m: &Value, v: &Value) -> Result<Value, SacError> {
    let m = m.as_array()?;
    if m.rank() != 2 {
        return Err(SacError::Eval { msg: format!("MV: matrix must be rank 2, got {}", m.rank()) });
    }
    let vec = v.as_ivec()?;
    let (rows, cols) = (m.shape().dim(0), m.shape().dim(1));
    if vec.len() != cols {
        return Err(SacError::Eval {
            msg: format!("MV: matrix has {cols} columns but vector has {} elements", vec.len()),
        });
    }
    let data = m.as_slice();
    let out: Vec<i64> =
        (0..rows).map(|r| (0..cols).map(|c| data[r * cols + c] * vec[c]).sum()).collect();
    Ok(Value::from_ivec(out))
}

/// Concatenation along the *last* axis.
///
/// For vectors this is ordinary concatenation; for matrices it is the
/// horizontal `[P | F]` the tiler formulae need, so that
/// `MV(CAT(paving, fitting), rep ++ pat) == MV(paving, rep) + MV(fitting, pat)`.
fn cat(a: &Value, b: &Value) -> Result<Value, SacError> {
    let a = a.as_array()?;
    let b = b.as_array()?;
    if a.rank() != b.rank() {
        return Err(SacError::Eval {
            msg: format!("CAT: rank mismatch {} vs {}", a.rank(), b.rank()),
        });
    }
    match a.rank() {
        1 => {
            let mut out = a.as_slice().to_vec();
            out.extend_from_slice(b.as_slice());
            Ok(Value::from_ivec(out))
        }
        2 => {
            let (ra, ca) = (a.shape().dim(0), a.shape().dim(1));
            let (rb, cb) = (b.shape().dim(0), b.shape().dim(1));
            if ra != rb {
                return Err(SacError::Eval {
                    msg: format!("CAT: row count mismatch {ra} vs {rb}"),
                });
            }
            let mut out = Vec::with_capacity(ra * (ca + cb));
            for r in 0..ra {
                out.extend_from_slice(&a.as_slice()[r * ca..(r + 1) * ca]);
                out.extend_from_slice(&b.as_slice()[r * cb..(r + 1) * cb]);
            }
            Ok(Value::Arr(NdArray::from_vec([ra, ca + cb], out).expect("length matches")))
        }
        r => Err(SacError::Eval { msg: format!("CAT: unsupported rank {r}") }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat(rows: usize, cols: usize, data: Vec<i64>) -> Value {
        Value::Arr(NdArray::from_vec([rows, cols], data).unwrap())
    }

    #[test]
    fn shape_and_dim() {
        let a = Value::Arr(NdArray::filled([4usize, 8], 0i64));
        assert_eq!(
            call_builtin("shape", std::slice::from_ref(&a)).unwrap().as_ivec().unwrap(),
            vec![4, 8]
        );
        assert_eq!(call_builtin("dim", &[a]).unwrap(), Value::Int(2));
        assert_eq!(
            call_builtin("shape", &[Value::Int(3)]).unwrap().as_ivec().unwrap(),
            Vec::<i64>::new()
        );
    }

    #[test]
    fn mv_multiplies() {
        // The paper's horizontal paving {{1,0},{0,8}}.
        let p = mat(2, 2, vec![1, 0, 0, 8]);
        let r = call_builtin("MV", &[p, Value::from_ivec(vec![3, 5])]).unwrap();
        assert_eq!(r.as_ivec().unwrap(), vec![3, 40]);
    }

    #[test]
    fn mv_validates_dimensions() {
        let p = mat(2, 2, vec![1, 0, 0, 8]);
        assert!(call_builtin("MV", &[p.clone(), Value::from_ivec(vec![1])]).is_err());
        assert!(
            call_builtin("MV", &[Value::from_ivec(vec![1]), Value::from_ivec(vec![1])]).is_err()
        );
    }

    #[test]
    fn cat_vectors_and_matrices() {
        let v = call_builtin("CAT", &[Value::from_ivec(vec![1, 2]), Value::from_ivec(vec![3])])
            .unwrap();
        assert_eq!(v.as_ivec().unwrap(), vec![1, 2, 3]);

        // CAT(paving 2x2, fitting 2x1) = 2x3 — the tiler identity.
        let paving = mat(2, 2, vec![1, 0, 0, 8]);
        let fitting = mat(2, 1, vec![0, 1]);
        let catm = call_builtin("CAT", &[paving.clone(), fitting.clone()]).unwrap();
        assert_eq!(catm.shape_vec(), vec![2, 3]);

        // MV(CAT(P,F), rep++pat) == MV(P,rep) + MV(F,pat)
        let rep = Value::from_ivec(vec![7, 9]);
        let pat = Value::from_ivec(vec![4]);
        let reppat = Value::from_ivec(vec![7, 9, 4]);
        let lhs = call_builtin("MV", &[catm, reppat]).unwrap().as_ivec().unwrap();
        let a = call_builtin("MV", &[paving, rep]).unwrap().as_ivec().unwrap();
        let b = call_builtin("MV", &[fitting, pat]).unwrap().as_ivec().unwrap();
        let rhs: Vec<i64> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn cat_rejects_mismatched_rows() {
        let a = mat(2, 1, vec![1, 2]);
        let b = mat(3, 1, vec![1, 2, 3]);
        assert!(call_builtin("CAT", &[a, b]).is_err());
    }

    #[test]
    fn scalar_builtins() {
        assert_eq!(call_builtin("min", &[Value::Int(3), Value::Int(5)]).unwrap(), Value::Int(3));
        assert_eq!(call_builtin("max", &[Value::Int(3), Value::Int(5)]).unwrap(), Value::Int(5));
        assert_eq!(call_builtin("abs", &[Value::Int(-7)]).unwrap(), Value::Int(7));
        assert_eq!(call_builtin("sum", &[Value::from_ivec(vec![1, 2, 3])]).unwrap(), Value::Int(6));
    }

    #[test]
    fn arity_errors() {
        assert!(call_builtin("shape", &[]).is_err());
        assert!(call_builtin("MV", &[Value::Int(1)]).is_err());
    }
}
