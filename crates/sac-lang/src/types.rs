//! Shape-class checking.
//!
//! SaC's type system stratifies arrays into shape classes: AKS (shape known,
//! e.g. `int[1080,1920]`), AKD (rank known, `int[.,.]`), AUD (`int[*]`).
//! The subset here checks values against annotations dynamically at call and
//! return boundaries ([`check_value`]) and performs a light static sanity pass
//! over programs ([`check_program`]): definite assignment of variables, arity
//! of user calls, and reachability of a `return`.

use crate::ast::*;
use crate::builtins::is_builtin;
use crate::value::Value;
use crate::SacError;
use std::collections::HashSet;

/// Check a runtime value against a type annotation.
pub fn check_value(ann: &TypeAnn, v: &Value) -> Result<(), String> {
    match (ann, v) {
        (TypeAnn::Int, Value::Int(_)) => Ok(()),
        (TypeAnn::Int, Value::Arr(a)) if a.rank() == 0 => Ok(()),
        (TypeAnn::Int, Value::Arr(a)) => {
            Err(format!("expected int, found array of shape {}", a.shape()))
        }
        (TypeAnn::ArrAnyRank, _) => Ok(()),
        (TypeAnn::ArrRank(r), Value::Arr(a)) if a.rank() == *r => Ok(()),
        (TypeAnn::ArrRank(r), other) => {
            Err(format!("expected rank-{r} array, found rank-{}", other.rank()))
        }
        (TypeAnn::ArrShape(dims), Value::Arr(a)) if a.shape().dims() == dims.as_slice() => Ok(()),
        (TypeAnn::ArrShape(dims), other) => {
            Err(format!("expected array of shape {dims:?}, found shape {:?}", other.shape_vec()))
        }
    }
}

/// Static sanity checks over a parsed program.
pub fn check_program(prog: &Program) -> Result<(), SacError> {
    let mut names = HashSet::new();
    for f in &prog.funs {
        if !names.insert(f.name.as_str()) {
            return Err(SacError::Type { msg: format!("duplicate function '{}'", f.name) });
        }
        if is_builtin(&f.name) {
            return Err(SacError::Type { msg: format!("function '{}' shadows a builtin", f.name) });
        }
    }
    for f in &prog.funs {
        let mut defined: HashSet<String> = f.params.iter().map(|(_, n)| n.clone()).collect();
        if !stmts_check(prog, &f.name, &f.body, &mut defined)? {
            return Err(SacError::Type {
                msg: format!("function '{}' may fall off the end without returning", f.name),
            });
        }
    }
    Ok(())
}

/// Check statements; returns whether a `return` is guaranteed on this path.
fn stmts_check(
    prog: &Program,
    fun: &str,
    stmts: &[Stmt],
    defined: &mut HashSet<String>,
) -> Result<bool, SacError> {
    let mut returned = false;
    for s in stmts {
        match s {
            Stmt::Assign(lv, e) => {
                expr_check(prog, fun, e, defined)?;
                match lv {
                    LValue::Var(n) => {
                        defined.insert(n.clone());
                    }
                    LValue::Index(n, ix) => {
                        if !defined.contains(n) {
                            return Err(SacError::Type {
                                msg: format!("'{fun}': indexed assignment to undefined '{n}'"),
                            });
                        }
                        expr_check(prog, fun, ix, defined)?;
                    }
                }
            }
            Stmt::For { var, init, limit, body } => {
                expr_check(prog, fun, init, defined)?;
                let mut inner = defined.clone();
                inner.insert(var.clone());
                expr_check(prog, fun, limit, &mut inner)?;
                stmts_check(prog, fun, body, &mut inner)?;
                // Variables assigned in the loop remain visible after it
                // (C scoping of the paper's code).
                for n in inner {
                    defined.insert(n);
                }
            }
            Stmt::Return(e) => {
                expr_check(prog, fun, e, defined)?;
                returned = true;
            }
        }
    }
    Ok(returned)
}

fn expr_check(
    prog: &Program,
    fun: &str,
    e: &Expr,
    defined: &mut HashSet<String>,
) -> Result<(), SacError> {
    match e {
        Expr::Int(_) => Ok(()),
        Expr::Var(n) => {
            if defined.contains(n) {
                Ok(())
            } else {
                Err(SacError::Type { msg: format!("'{fun}': use of undefined variable '{n}'") })
            }
        }
        Expr::VecLit(es) => {
            for e in es {
                expr_check(prog, fun, e, defined)?;
            }
            Ok(())
        }
        Expr::Neg(inner) => expr_check(prog, fun, inner, defined),
        Expr::Bin(_, l, r) => {
            expr_check(prog, fun, l, defined)?;
            expr_check(prog, fun, r, defined)
        }
        Expr::Call(name, args) => {
            for a in args {
                expr_check(prog, fun, a, defined)?;
            }
            if is_builtin(name) {
                return Ok(());
            }
            match prog.fun(name) {
                Some(f) if f.params.len() == args.len() => Ok(()),
                Some(f) => Err(SacError::Type {
                    msg: format!(
                        "'{fun}': call of '{name}' with {} arguments (expects {})",
                        args.len(),
                        f.params.len()
                    ),
                }),
                None => Err(SacError::Type { msg: format!("'{fun}': unknown function '{name}'") }),
            }
        }
        Expr::Select(a, ix) => {
            expr_check(prog, fun, a, defined)?;
            expr_check(prog, fun, ix, defined)
        }
        Expr::With(w) => {
            for gen in &w.generators {
                for b in [&gen.lower, &gen.upper, &gen.step, &gen.width].into_iter().flatten() {
                    expr_check(prog, fun, b, defined)?;
                }
                let mut inner = defined.clone();
                match &gen.var {
                    GenVar::Name(n) => {
                        inner.insert(n.clone());
                    }
                    GenVar::Components(ns) => {
                        for n in ns {
                            inner.insert(n.clone());
                        }
                    }
                }
                stmts_check(prog, fun, &gen.body, &mut inner)?;
                expr_check(prog, fun, &gen.yield_expr, &mut inner)?;
            }
            match &w.op {
                WithOp::Genarray { shape, default } => {
                    expr_check(prog, fun, shape, defined)?;
                    if let Some(d) = default {
                        expr_check(prog, fun, d, defined)?;
                    }
                    Ok(())
                }
                WithOp::Modarray(src) => expr_check(prog, fun, src, defined),
                WithOp::Fold { neutral, .. } => expr_check(prog, fun, neutral, defined),
            }
        }
        Expr::Block(stmts, result) => {
            let mut inner = defined.clone();
            stmts_check(prog, fun, stmts, &mut inner)?;
            expr_check(prog, fun, result, &mut inner)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use mdarray::NdArray;

    #[test]
    fn value_checks() {
        let a = Value::Arr(NdArray::filled([2usize, 3], 0i64));
        assert!(check_value(&TypeAnn::Int, &Value::Int(1)).is_ok());
        assert!(check_value(&TypeAnn::Int, &a).is_err());
        assert!(check_value(&TypeAnn::ArrAnyRank, &a).is_ok());
        assert!(check_value(&TypeAnn::ArrAnyRank, &Value::Int(1)).is_ok());
        assert!(check_value(&TypeAnn::ArrRank(2), &a).is_ok());
        assert!(check_value(&TypeAnn::ArrRank(1), &a).is_err());
        assert!(check_value(&TypeAnn::ArrShape(vec![2, 3]), &a).is_ok());
        assert!(check_value(&TypeAnn::ArrShape(vec![3, 2]), &a).is_err());
    }

    #[test]
    fn accepts_well_formed_program() {
        let p = parse_program(
            "int g(int x) { return( x); } int f(int x) { y = g(x); return( y + 1); }",
        )
        .unwrap();
        check_program(&p).unwrap();
    }

    #[test]
    fn rejects_undefined_variable() {
        let p = parse_program("int f() { return( y); }").unwrap();
        assert!(matches!(check_program(&p), Err(SacError::Type { .. })));
    }

    #[test]
    fn rejects_missing_return() {
        let p = parse_program("int f(int x) { y = x; }").unwrap();
        assert!(matches!(check_program(&p), Err(SacError::Type { .. })));
    }

    #[test]
    fn rejects_bad_arity() {
        let p =
            parse_program("int g(int x) { return( x); } int f() { return( g(1, 2)); }").unwrap();
        assert!(matches!(check_program(&p), Err(SacError::Type { .. })));
    }

    #[test]
    fn rejects_duplicate_and_builtin_shadowing() {
        let p = parse_program("int f() { return( 1); } int f() { return( 2); }").unwrap();
        assert!(check_program(&p).is_err());
        let p = parse_program("int shape(int x) { return( x); }").unwrap();
        assert!(check_program(&p).is_err());
    }

    #[test]
    fn generator_variables_are_in_scope() {
        let p = parse_program(
            "int[*] f() { o = with { ([0,0] <= [i,j] < [2,2]) : i + j; } : genarray( [2,2], 0); return( o); }",
        )
        .unwrap();
        check_program(&p).unwrap();
    }

    #[test]
    fn rejects_indexed_assign_to_undefined() {
        let p = parse_program("int f() { t[0] = 1; return( 0); }").unwrap();
        assert!(check_program(&p).is_err());
    }
}
