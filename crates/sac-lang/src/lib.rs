#![warn(missing_docs)]

//! # sac-lang — a Single Assignment C (SaC) front end and optimiser
//!
//! SaC is a functional, data-parallel array language with C-like syntax. This
//! crate implements the subset the paper exercises (its Figures 4–8):
//!
//! * C-like functions over `int` and multidimensional `int` arrays with
//!   shape-class types `int`, `int[.]`, `int[.,.]`, `int[*]`, `int[1080,1920]`,
//! * the **WITH-loop** construct with multiple generators
//!   (`(lb <= iv < ub step s width w)`), `genarray`/`modarray`/`fold`
//!   operations, nested WITH-loops and vector index variables,
//! * vector arithmetic (`+`, `%`, `++` concatenation), `shape`, and the
//!   paper's `MV` (matrix–vector product) and `CAT` (matrix concatenation)
//!   helpers,
//! * C-style `for` loops (used by the paper's *generic output tiler* — and,
//!   exactly as in the paper, opaque to the parallelising optimiser),
//! * `return` statements.
//!
//! ## Pipeline
//!
//! ```text
//! source ──lexer/parser──► AST ──typecheck──► AST
//!   ──inline ∘ constant-fold──► AST
//!   ──lower (scalarise nested WITH-loops, vectors → symbolic scalars)──► FlatProgram
//!   ──WITH-loop folding (fold + generator splitting)──► FlatProgram
//!   ──► sac-cuda backend (one kernel per generator)  |  flat evaluator (SAC-Seq)
//! ```
//!
//! The AST interpreter ([`eval`]) is the semantic reference; every optimisation
//! is validated against it in tests. The flat evaluator ([`wir`]) executes
//! lowered programs quickly and counts operations for the sequential cost
//! model.
//!
//! ## Dialect notes (divergences from full SaC, documented per DESIGN.md)
//!
//! * `%` is Euclidean (result has the sign of the divisor): the tiler formulae
//!   wrap negative offsets modulo array shapes, and the paper's
//!   `iv = off % shape(in_frame)` relies on wrap semantics.
//! * `genarray(shp)` without a default uses 0 as the default cell value.
//! * Only `int` element types; no overloading, no modules, no type inference
//!   beyond shapes.

//! ## Example
//!
//! ```
//! use sac_lang::opt::{optimize, ArgDesc, OptConfig};
//! use sac_lang::value::Value;
//! use mdarray::NdArray;
//!
//! let src = r#"
//! int[*] main(int[8] a)
//! {
//!     out = with { (. <= iv <= .) : a[iv] * 2 + 1; } : genarray( shape(a), 0);
//!     return( out);
//! }
//! "#;
//! let prog = sac_lang::parse_program(src).unwrap();
//!
//! // Interpret directly…
//! let a = NdArray::from_fn([8usize], |ix| ix[0] as i64);
//! let mut interp = sac_lang::Interp::new(&prog);
//! let v = interp.call("main", vec![Value::Arr(a.clone())]).unwrap();
//!
//! // …or optimise to the flat form and evaluate that.
//! let args = [ArgDesc::Array { name: "a".into(), shape: vec![8] }];
//! let (flat, _) = optimize(&prog, "main", &args, &OptConfig::default()).unwrap();
//! let w = flat.run(&[a], &mut 0).unwrap();
//! assert_eq!(v, Value::Arr(w));
//! ```

pub mod ast;
pub mod builtins;
pub mod eval;
pub mod lexer;
pub mod opt;
pub mod parser;
pub mod pretty;
pub mod token;
pub mod types;
pub mod value;
pub mod wir;

pub use ast::{Expr, FunDef, Generator, Program, Stmt, WithLoop, WithOp};
pub use eval::Interp;
pub use parser::parse_program;
pub use value::Value;
pub use wir::{FlatGen, FlatProgram, FlatWith, SymExpr};

/// Errors from any stage of the SaC pipeline.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // variant payload fields are self-describing
pub enum SacError {
    /// Lexical error with 1-based line number.
    Lex { line: usize, msg: String },
    /// Parse error with 1-based line number.
    Parse { line: usize, msg: String },
    /// Static checking error.
    Type { msg: String },
    /// Runtime error in the interpreter.
    Eval { msg: String },
    /// A construct could not be lowered to the flat data-parallel form.
    ///
    /// This is not fatal to a program — it is the mechanism by which e.g. the
    /// generic output tiler's `for` nest "stays on the host" — but lowering of
    /// that function stops here.
    NotLowerable { construct: String, msg: String },
}

impl std::fmt::Display for SacError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SacError::Lex { line, msg } => write!(f, "lex error (line {line}): {msg}"),
            SacError::Parse { line, msg } => write!(f, "parse error (line {line}): {msg}"),
            SacError::Type { msg } => write!(f, "type error: {msg}"),
            SacError::Eval { msg } => write!(f, "evaluation error: {msg}"),
            SacError::NotLowerable { construct, msg } => {
                write!(f, "cannot lower {construct}: {msg}")
            }
        }
    }
}

impl std::error::Error for SacError {}
