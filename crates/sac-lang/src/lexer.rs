//! Hand-written lexer for the SaC subset.

use crate::token::{Tok, Token};
use crate::SacError;

/// Tokenise SaC source. Supports `//` line comments and `/* */` block
/// comments (non-nesting), decimal integer literals, and the operator set of
//  the paper's figures.
pub fn lex(src: &str) -> Result<Vec<Token>, SacError> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;

    macro_rules! push {
        ($k:expr) => {
            toks.push(Token { kind: $k, line })
        };
    }

    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(SacError::Lex { line, msg: "unterminated comment".into() });
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text = &src[start..i];
                let v = text.parse::<i64>().map_err(|_| SacError::Lex {
                    line,
                    msg: format!("integer literal '{text}' out of range"),
                })?;
                push!(Tok::Int(v));
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let word = &src[start..i];
                let kind = match word {
                    "with" => Tok::With,
                    "genarray" => Tok::Genarray,
                    "modarray" => Tok::Modarray,
                    "fold" => Tok::Fold,
                    "step" => Tok::Step,
                    "width" => Tok::Width,
                    "return" => Tok::Return,
                    "for" => Tok::For,
                    "if" => Tok::If,
                    "else" => Tok::Else,
                    _ => Tok::Ident(word.to_string()),
                };
                push!(kind);
            }
            '(' => {
                push!(Tok::LParen);
                i += 1;
            }
            ')' => {
                push!(Tok::RParen);
                i += 1;
            }
            '{' => {
                push!(Tok::LBrace);
                i += 1;
            }
            '}' => {
                push!(Tok::RBrace);
                i += 1;
            }
            '[' => {
                push!(Tok::LBracket);
                i += 1;
            }
            ']' => {
                push!(Tok::RBracket);
                i += 1;
            }
            ',' => {
                push!(Tok::Comma);
                i += 1;
            }
            ';' => {
                push!(Tok::Semi);
                i += 1;
            }
            ':' => {
                push!(Tok::Colon);
                i += 1;
            }
            '+' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'+' {
                    push!(Tok::PlusPlus);
                    i += 2;
                } else {
                    push!(Tok::Plus);
                    i += 1;
                }
            }
            '-' => {
                push!(Tok::Minus);
                i += 1;
            }
            '*' => {
                push!(Tok::Star);
                i += 1;
            }
            '/' => {
                push!(Tok::Slash);
                i += 1;
            }
            '%' => {
                push!(Tok::Percent);
                i += 1;
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    push!(Tok::Le);
                    i += 2;
                } else {
                    push!(Tok::Lt);
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    push!(Tok::Ge);
                    i += 2;
                } else {
                    push!(Tok::Gt);
                    i += 1;
                }
            }
            '=' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    push!(Tok::EqEq);
                    i += 2;
                } else {
                    push!(Tok::Assign);
                    i += 1;
                }
            }
            '!' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    push!(Tok::NotEq);
                    i += 2;
                } else {
                    return Err(SacError::Lex { line, msg: "unexpected '!'".into() });
                }
            }
            '.' => {
                push!(Tok::Dot);
                i += 1;
            }
            other => {
                return Err(SacError::Lex { line, msg: format!("unexpected character '{other}'") })
            }
        }
    }
    toks.push(Token { kind: Tok::Eof, line });
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_keywords_and_idents() {
        let k = kinds("with genarray modarray step width frame");
        assert_eq!(
            k,
            vec![
                Tok::With,
                Tok::Genarray,
                Tok::Modarray,
                Tok::Step,
                Tok::Width,
                Tok::Ident("frame".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lexes_operators() {
        let k = kinds("a ++ b + c <= d < e == f != g");
        assert!(k.contains(&Tok::PlusPlus));
        assert!(k.contains(&Tok::Le));
        assert!(k.contains(&Tok::Lt));
        assert!(k.contains(&Tok::EqEq));
        assert!(k.contains(&Tok::NotEq));
    }

    #[test]
    fn skips_comments_and_counts_lines() {
        let toks = lex("// comment\nx /* multi\nline */ y").unwrap();
        assert_eq!(toks[0].kind, Tok::Ident("x".into()));
        assert_eq!(toks[0].line, 2);
        assert_eq!(toks[1].kind, Tok::Ident("y".into()));
        assert_eq!(toks[1].line, 3);
    }

    #[test]
    fn rejects_unterminated_comment() {
        assert!(matches!(lex("/* oops"), Err(SacError::Lex { .. })));
    }

    #[test]
    fn rejects_unknown_character() {
        assert!(matches!(lex("a $ b"), Err(SacError::Lex { .. })));
    }

    #[test]
    fn lexes_integers() {
        assert_eq!(kinds("1080 1920")[..2], [Tok::Int(1080), Tok::Int(1920)]);
    }

    #[test]
    fn dots_in_generators() {
        let k = kinds("( . <= iv <= . )");
        assert_eq!(k[1], Tok::Dot);
        assert_eq!(k[5], Tok::Dot);
    }
}
