//! The discrete-event serving engine.
//!
//! One chronological event heap drives the run: job arrivals (from the
//! open-loop trace) and device completions. At an arrival the shard policy
//! pins the job to a device; the device either starts it immediately (if
//! idle), queues it (if the bounded queue has room), or sheds it at the
//! door. At a completion the device picks its next waiting job by weighted
//! tenant fairness. Jobs execute *at their start event* — functionally
//! through the shared `BatchScheduler`, or by replaying a captured
//! [`JobTemplate`] — so durations are measured exactly when the event loop
//! needs them and the whole run is deterministic: no wall clock, no
//! threads, no randomness.

use std::collections::{BTreeMap, BinaryHeap, VecDeque};
use std::fmt;

use mdarray::NdArray;
use simgpu::{BatchScheduler, ExecOptions, Fleet, LaunchPlan, RunStats, ScheduleError, StreamId};

use crate::config::{ServeConfig, ShardPolicy};
use crate::report::{ServeReport, TenantStats};
use crate::template::JobTemplate;

/// Errors from the serving layer.
#[derive(Debug)]
pub enum ServeError {
    /// A configuration knob was rejected up front (zero queue capacity,
    /// zero tenant weight, unknown tenant id, malformed job, ...).
    Config(String),
    /// The execution layer failed underneath a job.
    Schedule(ScheduleError),
    /// A replay-only job arrived before any functional job of its shape
    /// had been measured (no [`JobTemplate`] for its frame count).
    Template(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Config(m) => write!(f, "serve config error: {m}"),
            ServeError::Schedule(e) => write!(f, "serve schedule error: {e}"),
            ServeError::Template(m) => write!(f, "serve template error: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<ScheduleError> for ServeError {
    fn from(e: ScheduleError) -> Self {
        ServeError::Schedule(e)
    }
}

/// One downscale job in an arrival trace.
#[derive(Debug, Clone)]
pub struct Job {
    /// Caller-chosen id, echoed in notes and outcomes.
    pub id: usize,
    /// Owning tenant; must index into [`ServeConfig::tenant_weights`].
    pub tenant: usize,
    /// Arrival time on the open-loop trace timeline, µs.
    pub submit_us: f64,
    /// Functional frame payloads. May be empty for a *replay-only* job,
    /// which charges exact time from a captured template instead of
    /// computing outputs.
    pub frames: Vec<Vec<NdArray<i64>>>,
    /// Frames the job charges in total (functional + timing-replayed);
    /// `0` means `frames.len()`. This is the job's shape key: replay-only
    /// jobs reuse the template captured for this frame count.
    pub total_frames: usize,
}

impl Job {
    /// A functional job carrying its frames.
    pub fn functional(
        id: usize,
        tenant: usize,
        submit_us: f64,
        frames: Vec<Vec<NdArray<i64>>>,
    ) -> Job {
        let total_frames = frames.len();
        Job { id, tenant, submit_us, frames, total_frames }
    }

    /// A replay-only job: charges the exact schedule of a captured
    /// `total_frames`-frame template, produces no outputs.
    pub fn replay(id: usize, tenant: usize, submit_us: f64, total_frames: usize) -> Job {
        Job { id, tenant, submit_us, frames: Vec::new(), total_frames }
    }

    fn charged_frames(&self) -> usize {
        if self.total_frames == 0 {
            self.frames.len()
        } else {
            self.total_frames
        }
    }
}

/// What happened to one job, indexed like the input trace.
#[derive(Debug, Clone)]
pub enum JobOutcome {
    /// The job ran to completion on `device`.
    Completed {
        /// Device index that executed the job.
        device: usize,
        /// When the device began executing it (trace timeline, µs) —
        /// `start_us − submit_us` is the queueing delay.
        start_us: f64,
        /// Completion time (trace timeline, µs) — `end_us − submit_us` is
        /// the job latency.
        end_us: f64,
        /// Frame outputs, in frame order; empty for replay-only jobs.
        outputs: Vec<Vec<NdArray<i64>>>,
    },
    /// Admission control shed the job at arrival: its assigned `device`'s
    /// bounded queue was full. Shed jobs execute nothing — zero partial
    /// output, zero device time.
    Shed {
        /// Device whose full queue shed the job.
        device: usize,
        /// The arrival time at which it was shed, µs.
        at_us: f64,
    },
}

/// Heap event: completions sort before arrivals at equal times so a device
/// freed at time `t` can accept an arrival at `t`; `seq` makes the order
/// total and deterministic.
struct Event {
    at_us: f64,
    kind: EventKind,
    seq: usize,
}

#[derive(PartialEq, Eq)]
enum EventKind {
    Completion { device: usize },
    Arrival { job: usize },
}

impl Event {
    fn rank(&self) -> usize {
        match self.kind {
            EventKind::Completion { .. } => 0,
            EventKind::Arrival { .. } => 1,
        }
    }
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest event pops first.
        self.at_us
            .total_cmp(&other.at_us)
            .then(self.rank().cmp(&other.rank()))
            .then(self.seq.cmp(&other.seq))
            .reverse()
    }
}

/// Per-device serving state (the fleet device itself lives in the `Fleet`).
struct DeviceState {
    /// Indices of jobs waiting on this device, in arrival order.
    waiting: VecDeque<usize>,
    /// Waiting + running job count, for the least-loaded policy.
    outstanding: usize,
    /// Whether a job is currently executing.
    busy: bool,
    /// Trace-timeline instant at which the device last became free.
    free_at_us: f64,
    /// Dedicated replay stream set, reused across replayed jobs.
    replay_streams: Vec<StreamId>,
}

/// Serve `jobs` (an open-loop arrival trace) on `fleet`, executing every
/// admitted job against the shared `plan`. Convenience wrapper over
/// [`serve_with_templates`] with an empty template cache: templates are
/// captured on the fly from functional jobs, so a replay-only job must be
/// preceded (in trace order) by a functional job of the same frame count.
pub fn serve(
    fleet: &mut Fleet,
    plan: &LaunchPlan<'_>,
    jobs: &[Job],
    cfg: &ServeConfig,
) -> Result<ServeReport, ServeError> {
    let mut templates = BTreeMap::new();
    serve_with_templates(fleet, plan, jobs, cfg, &mut templates)
}

/// [`serve`], with an explicit template cache keyed by job frame count.
/// Pre-populating the cache (via [`JobTemplate::capture`] on a scratch
/// device) lets a trace be entirely replay-only; templates captured from
/// this run's functional jobs are added to the cache for reuse.
pub fn serve_with_templates(
    fleet: &mut Fleet,
    plan: &LaunchPlan<'_>,
    jobs: &[Job],
    cfg: &ServeConfig,
    templates: &mut BTreeMap<usize, JobTemplate>,
) -> Result<ServeReport, ServeError> {
    cfg.validate()?;
    for job in jobs {
        if job.tenant >= cfg.tenant_weights.len() {
            return Err(ServeError::Config(format!(
                "job {} names tenant {} but only {} tenant weights are configured",
                job.id,
                job.tenant,
                cfg.tenant_weights.len()
            )));
        }
        if job.charged_frames() == 0 {
            return Err(ServeError::Config(format!("job {} charges zero frames", job.id)));
        }
        if job.total_frames != 0 && job.total_frames < job.frames.len() {
            return Err(ServeError::Config(format!(
                "job {}: total_frames {} is less than its {} supplied frames",
                job.id,
                job.total_frames,
                job.frames.len()
            )));
        }
        if !job.submit_us.is_finite() || job.submit_us < 0.0 {
            return Err(ServeError::Config(format!(
                "job {} has a non-finite or negative submit time",
                job.id
            )));
        }
    }

    let n = fleet.len();
    fleet.set_pool_enabled(cfg.exec.pool);
    let mut states: Vec<DeviceState> = (0..n)
        .map(|_| DeviceState {
            waiting: VecDeque::new(),
            outstanding: 0,
            busy: false,
            free_at_us: 0.0,
            replay_streams: Vec::new(),
        })
        .collect();

    let mut heap = BinaryHeap::new();
    for (j, job) in jobs.iter().enumerate() {
        heap.push(Event { at_us: job.submit_us, kind: EventKind::Arrival { job: j }, seq: j });
    }
    let mut seq = jobs.len();

    let mut outcomes: Vec<Option<JobOutcome>> = (0..jobs.len()).map(|_| None).collect();
    let mut granted_frames: Vec<u64> = vec![0; cfg.tenant_weights.len()];
    let mut stats = RunStats::default();
    let mut arrivals_seen = 0usize;

    while let Some(ev) = heap.pop() {
        let now = ev.at_us;
        match ev.kind {
            EventKind::Arrival { job: j } => {
                let job = &jobs[j];
                let d = match cfg.policy {
                    ShardPolicy::RoundRobin => arrivals_seen % n,
                    ShardPolicy::StickyByTenant => job.tenant % n,
                    ShardPolicy::LeastLoaded => (0..n)
                        .min_by(|&a, &b| {
                            states[a]
                                .outstanding
                                .cmp(&states[b].outstanding)
                                .then(states[a].free_at_us.total_cmp(&states[b].free_at_us))
                                .then(a.cmp(&b))
                        })
                        .expect("fleet is never empty"),
                };
                arrivals_seen += 1;
                if !states[d].busy {
                    // Idle device: waiting queue is empty by invariant.
                    states[d].outstanding += 1;
                    let mut ev = start_job(
                        fleet,
                        plan,
                        jobs,
                        cfg,
                        templates,
                        &mut states,
                        &mut stats,
                        &mut granted_frames,
                        &mut outcomes,
                        j,
                        d,
                        now,
                    )?;
                    seq += 1;
                    ev.seq = seq;
                    heap.push(ev);
                } else if states[d].waiting.len() >= cfg.queue_capacity {
                    // Admission control: shed at the door, note it on the
                    // device that refused so the merged profiler tells the
                    // overload story.
                    fleet.device_mut(d).profiler.note(format!(
                        "shed: job {} (tenant {}) at device {d}, queue full at depth {}",
                        job.id, job.tenant, cfg.queue_capacity
                    ));
                    outcomes[j] = Some(JobOutcome::Shed { device: d, at_us: now });
                } else {
                    states[d].waiting.push_back(j);
                    states[d].outstanding += 1;
                }
            }
            EventKind::Completion { device: d } => {
                states[d].busy = false;
                states[d].outstanding -= 1;
                states[d].free_at_us = now;
                // Weighted fairness: among this device's waiting jobs, pick
                // the tenant with the smallest granted-frames/weight ratio
                // (ties: lower tenant id, then arrival order). Ratios only
                // grow with grants, so every waiting tenant's turn comes.
                let next = states[d]
                    .waiting
                    .iter()
                    .enumerate()
                    .min_by(|&(pa, &ja), &(pb, &jb)| {
                        let (ta, tb) = (jobs[ja].tenant, jobs[jb].tenant);
                        // a/wa < b/wb  <=>  a*wb < b*wa (all nonneg, w > 0).
                        let lhs = granted_frames[ta] as u128 * cfg.tenant_weights[tb] as u128;
                        let rhs = granted_frames[tb] as u128 * cfg.tenant_weights[ta] as u128;
                        lhs.cmp(&rhs).then(ta.cmp(&tb)).then(pa.cmp(&pb))
                    })
                    .map(|(pos, _)| pos);
                if let Some(pos) = next {
                    let j = states[d].waiting.remove(pos).expect("pos is in range");
                    let mut ev = start_job(
                        fleet,
                        plan,
                        jobs,
                        cfg,
                        templates,
                        &mut states,
                        &mut stats,
                        &mut granted_frames,
                        &mut outcomes,
                        j,
                        d,
                        now,
                    )?;
                    seq += 1;
                    ev.seq = seq;
                    heap.push(ev);
                }
            }
        }
    }

    let outcomes: Vec<JobOutcome> = outcomes
        .into_iter()
        .enumerate()
        .map(|(j, o)| {
            o.ok_or_else(|| {
                ServeError::Config(format!("job {j} was never dispatched or shed (engine bug)"))
            })
        })
        .collect::<Result<_, _>>()?;

    let mut tenants: Vec<TenantStats> = (0..cfg.tenant_weights.len())
        .map(|t| TenantStats { tenant: t, completed: 0, shed: 0, frames: 0 })
        .collect();
    let mut completed = 0usize;
    let mut shed = 0usize;
    let mut total_frames = 0usize;
    let mut makespan_us = 0.0f64;
    for (j, o) in outcomes.iter().enumerate() {
        let t = jobs[j].tenant;
        match o {
            JobOutcome::Completed { end_us, .. } => {
                completed += 1;
                tenants[t].completed += 1;
                tenants[t].frames += jobs[j].charged_frames();
                total_frames += jobs[j].charged_frames();
                makespan_us = makespan_us.max(*end_us);
            }
            JobOutcome::Shed { .. } => {
                shed += 1;
                tenants[t].shed += 1;
            }
        }
    }

    Ok(ServeReport { outcomes, stats, completed, shed, total_frames, makespan_us, tenants })
}

/// Start job `j` on idle, synchronized device `d` at trace time `start_us`:
/// execute it (functionally or by template replay), record its outcome, and
/// return the completion event for the heap (with `seq` left for the caller
/// to stamp).
#[allow(clippy::too_many_arguments)]
fn start_job(
    fleet: &mut Fleet,
    plan: &LaunchPlan<'_>,
    jobs: &[Job],
    cfg: &ServeConfig,
    templates: &mut BTreeMap<usize, JobTemplate>,
    states: &mut [DeviceState],
    stats: &mut RunStats,
    granted: &mut [u64],
    outcomes: &mut [Option<JobOutcome>],
    j: usize,
    d: usize,
    start_us: f64,
) -> Result<Event, ServeError> {
    let job = &jobs[j];
    granted[job.tenant] += job.charged_frames() as u64;
    let device = fleet.device_mut(d);
    let t0 = device.now_us();
    let (outputs, job_stats) = if job.frames.is_empty() {
        let tpl = templates.get(&job.total_frames).ok_or_else(|| {
            ServeError::Template(format!(
                "replay-only job {} needs a captured template for {} frames; \
                 run a functional job of that shape first or pre-capture one",
                job.id, job.total_frames
            ))
        })?;
        let st = tpl.replay(device, &mut states[d].replay_streams)?;
        (Vec::new(), st)
    } else {
        let span_mark = device.profiler.spans().count();
        let opts = ExecOptions { total_frames: job.charged_frames(), ..cfg.exec };
        let (outs, st) = BatchScheduler::new(plan).run(device, &job.frames, &opts)?;
        // The first functional job of a shape doubles as its template.
        templates.entry(job.charged_frames()).or_insert_with(|| {
            let spans = device
                .profiler
                .spans()
                .skip(span_mark)
                .map(|sp| crate::template::TemplateSpan {
                    name: sp.name.clone(),
                    class: sp.class,
                    stream: sp.stream,
                    dur_us: sp.duration_us(),
                })
                .collect();
            JobTemplate {
                total_frames: job.charged_frames(),
                dur_us: device.now_us() - t0,
                spans,
                stats: st.clone(),
            }
        });
        (outs, st)
    };
    let dur = fleet.device(d).now_us() - t0;
    stats.accumulate(&job_stats);
    let end_us = start_us + dur;
    outcomes[j] = Some(JobOutcome::Completed { device: d, start_us, end_us, outputs });
    states[d].busy = true;
    Ok(Event { at_us: end_us, kind: EventKind::Completion { device: d }, seq: 0 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use simgpu::kir::{BinOp, Kernel, KernelBuilder, KernelFlavor, Special};
    use simgpu::{ArrayDecl, Device, Fleet, LaunchConfig, PlanKernel, PlanStep};

    const N: usize = 32;

    /// x[i] = 3 * x[i].
    fn triple_kernel() -> (Kernel, LaunchConfig) {
        let mut b = KernelBuilder::new("triple", KernelFlavor::Cuda);
        let x = b.buffer_param("x", true);
        let gid = b.special(Special::GlobalIdX);
        let v = b.load(x, gid);
        let three = b.constant(3);
        let w = b.bin(BinOp::Mul, v, three);
        b.store(x, gid, w);
        (b.finish(), LaunchConfig::cover_1d(N, 32))
    }

    fn triple_plan(kernel: &Kernel, config: LaunchConfig) -> LaunchPlan<'_> {
        LaunchPlan {
            arrays: vec![ArrayDecl { name: "a".into(), shape: vec![N] }],
            inputs: vec![0],
            outputs: vec![0],
            kernels: vec![PlanKernel::new(kernel, config, vec![0])],
            host_ops: Vec::new(),
            steps: vec![
                PlanStep::Upload { array: 0, chunks: 1 },
                PlanStep::Launch { kernel: 0 },
                PlanStep::Download { array: 0, chunks: 1 },
            ],
            prologue: Vec::new(),
            invariant: Vec::new(),
            batches: Vec::new(),
            carries: Vec::new(),
            lane_label: "stream lanes",
        }
    }

    fn frame(tag: usize) -> Vec<NdArray<i64>> {
        vec![NdArray::from_fn([N], |ix| (tag * 1000 + ix[0]) as i64)]
    }

    fn expected(tag: usize) -> NdArray<i64> {
        NdArray::from_fn([N], |ix| 3 * (tag * 1000 + ix[0]) as i64)
    }

    fn burst(jobs: usize, frames_per_job: usize, gap_us: f64) -> Vec<Job> {
        (0..jobs)
            .map(|j| {
                Job::functional(
                    j,
                    0,
                    gap_us * j as f64,
                    (0..frames_per_job).map(|f| frame(j * 10 + f)).collect(),
                )
            })
            .collect()
    }

    #[test]
    fn outputs_are_bit_identical_at_every_fleet_width() {
        let (kernel, config) = triple_kernel();
        let plan = triple_plan(&kernel, config);
        let jobs = burst(9, 2, 5.0);
        let mut cfg = ServeConfig::new(ShardPolicy::RoundRobin);
        cfg.queue_capacity = jobs.len();

        let mut baseline = None;
        for width in [1usize, 2, 3, 4, 8] {
            for policy in
                [ShardPolicy::RoundRobin, ShardPolicy::LeastLoaded, ShardPolicy::StickyByTenant]
            {
                let mut fleet = Fleet::gtx480(width).unwrap();
                let cfg = ServeConfig { policy, ..cfg.clone() };
                let report = serve(&mut fleet, &plan, &jobs, &cfg).unwrap();
                assert_eq!(report.completed, jobs.len());
                assert_eq!(report.shed, 0);
                let outs: Vec<Vec<Vec<NdArray<i64>>>> = report
                    .outcomes
                    .iter()
                    .map(|o| match o {
                        JobOutcome::Completed { outputs, .. } => outputs.clone(),
                        JobOutcome::Shed { .. } => panic!("unexpected shed"),
                    })
                    .collect();
                for (j, job_out) in outs.iter().enumerate() {
                    for (f, fo) in job_out.iter().enumerate() {
                        assert_eq!(fo[0], expected(j * 10 + f), "job {j} frame {f}");
                    }
                }
                match &baseline {
                    None => baseline = Some(outs),
                    Some(b) => assert_eq!(&outs, b, "width {width} policy {}", policy.name()),
                }
            }
        }
    }

    #[test]
    fn single_device_serve_matches_direct_scheduler_runs() {
        let (kernel, config) = triple_kernel();
        let plan = triple_plan(&kernel, config);
        // All jobs arrive at t=0: the device processes them back to back,
        // exactly like sequential direct BatchScheduler runs.
        let jobs = burst(4, 3, 0.0);
        let mut cfg = ServeConfig::new(ShardPolicy::LeastLoaded);
        cfg.queue_capacity = jobs.len();
        let mut fleet = Fleet::gtx480(1).unwrap();
        let report = serve(&mut fleet, &plan, &jobs, &cfg).unwrap();

        let mut direct = Device::gtx480();
        direct.set_pool_enabled(cfg.exec.pool);
        let mut direct_stats = RunStats::default();
        for job in &jobs {
            let (outs, st) =
                BatchScheduler::new(&plan).run(&mut direct, &job.frames, &cfg.exec).unwrap();
            direct_stats.accumulate(&st);
            let _ = outs;
        }
        assert_eq!(fleet.device(0).now_us(), direct.now_us());
        assert_eq!(report.stats, direct_stats);
        assert_eq!(report.makespan_us, direct.now_us());
    }

    #[test]
    fn replayed_jobs_charge_exactly_the_functional_schedule() {
        let (kernel, config) = triple_kernel();
        let plan = triple_plan(&kernel, config);
        // One functional job captures the 2-frame template; two replay jobs
        // then charge exactly the same duration each.
        let jobs = vec![
            Job::functional(0, 0, 0.0, vec![frame(1), frame(2)]),
            Job::replay(1, 0, 1.0, 2),
            Job::replay(2, 0, 2.0, 2),
        ];
        let mut cfg = ServeConfig::new(ShardPolicy::RoundRobin);
        cfg.queue_capacity = jobs.len();
        let mut fleet = Fleet::gtx480(1).unwrap();
        let report = serve(&mut fleet, &plan, &jobs, &cfg).unwrap();
        assert_eq!(report.completed, 3);
        let durs: Vec<f64> = report
            .outcomes
            .iter()
            .map(|o| match o {
                JobOutcome::Completed { start_us, end_us, .. } => end_us - start_us,
                JobOutcome::Shed { .. } => panic!("unexpected shed"),
            })
            .collect();
        // Replay reproduces the schedule op for op, but at a different
        // device-clock offset, so durations agree only up to f64
        // accumulation ulps ((T + a + b) − T is not exactly a + b). The
        // drift is itself deterministic — pure IEEE arithmetic, no libm —
        // so serving traces stay golden-able byte for byte.
        assert!((durs[0] - durs[1]).abs() <= durs[0] * 1e-12, "{durs:?}");
        assert!((durs[1] - durs[2]).abs() <= durs[0] * 1e-12, "{durs:?}");
        // Stats triple too: replay clones the template's counters.
        assert_eq!(report.stats.launches, 3 * 2);
    }

    #[test]
    fn thousands_of_replay_jobs_serve_cheaply() {
        let (kernel, config) = triple_kernel();
        let plan = triple_plan(&kernel, config);
        let mut templates = BTreeMap::new();
        let mut probe = Device::gtx480();
        let tpl = JobTemplate::capture(&plan, &mut probe, &ExecOptions::default(), &[frame(0)], 4)
            .unwrap();
        templates.insert(4, tpl);

        let jobs: Vec<Job> = (0..2000).map(|j| Job::replay(j, j % 3, 40.0 * j as f64, 4)).collect();
        let mut cfg = ServeConfig::new(ShardPolicy::LeastLoaded);
        cfg.tenant_weights = vec![1, 1, 1];
        cfg.queue_capacity = 64;
        let mut fleet = Fleet::gtx480(4).unwrap();
        let report = serve_with_templates(&mut fleet, &plan, &jobs, &cfg, &mut templates).unwrap();
        assert_eq!(report.completed + report.shed, 2000);
        assert!(report.completed > 0);
        assert_eq!(report.total_frames, report.completed * 4);
        // Every tenant got service.
        for t in &report.tenants {
            assert!(t.completed > 0, "tenant {} starved", t.tenant);
        }
    }

    #[test]
    fn replay_job_without_template_is_a_typed_error() {
        let (kernel, config) = triple_kernel();
        let plan = triple_plan(&kernel, config);
        let jobs = vec![Job::replay(0, 0, 0.0, 5)];
        let cfg = ServeConfig::new(ShardPolicy::RoundRobin);
        let mut fleet = Fleet::gtx480(2).unwrap();
        let err = serve(&mut fleet, &plan, &jobs, &cfg);
        assert!(matches!(&err, Err(ServeError::Template(m)) if m.contains("5 frames")), "{err:?}");
    }

    #[test]
    fn unknown_tenant_is_a_typed_error() {
        let (kernel, config) = triple_kernel();
        let plan = triple_plan(&kernel, config);
        let jobs = vec![Job::functional(0, 7, 0.0, vec![frame(0)])];
        let cfg = ServeConfig::new(ShardPolicy::RoundRobin);
        let mut fleet = Fleet::gtx480(1).unwrap();
        let err = serve(&mut fleet, &plan, &jobs, &cfg);
        assert!(matches!(&err, Err(ServeError::Config(m)) if m.contains("tenant 7")), "{err:?}");
    }

    #[test]
    fn full_queue_sheds_with_a_profiler_note_and_no_corruption() {
        let (kernel, config) = triple_kernel();
        let plan = triple_plan(&kernel, config);
        // 5 simultaneous jobs, 1 device, queue depth 1: one runs, one
        // waits, three shed.
        let jobs = burst(5, 1, 0.0);
        let mut cfg = ServeConfig::new(ShardPolicy::RoundRobin);
        cfg.queue_capacity = 1;
        let mut fleet = Fleet::gtx480(1).unwrap();
        let report = serve(&mut fleet, &plan, &jobs, &cfg).unwrap();
        assert_eq!(report.completed, 2);
        assert_eq!(report.shed, 3);
        let merged = fleet.merged_profiler();
        assert_eq!(merged.notes().filter(|n| n.starts_with("shed:")).count(), 3);
        // Completed jobs' outputs are intact; shed jobs did zero work.
        for o in &report.outcomes {
            if let JobOutcome::Completed { outputs, .. } = o {
                assert_eq!(outputs.len(), 1);
            }
        }
    }
}
