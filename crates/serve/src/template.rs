//! Replay templates: measure one job's exact span schedule once, then
//! re-run it for free.
//!
//! The simulator's cost model is content-independent — a frame's simulated
//! cost depends on shapes and calibration, never on pixel values — and
//! every fleet device is configured identically. So the full span schedule
//! of one *functional* job (names, op classes, stream assignment, charged
//! durations, in enqueue order) is an exact timing witness for every other
//! job of the same shape. A [`JobTemplate`] captures that witness;
//! replaying it through [`Device::replay_on`] on a synchronized device
//! advances clocks, engines and the profiler exactly as the functional run
//! would, at zero compute cost. This is the serving-scale version of the
//! `BatchScheduler`'s own warm-frame timing replay.

use mdarray::NdArray;
use simgpu::{
    BatchScheduler, Device, ExecOptions, LaunchPlan, OpClass, RunStats, ScheduleError, StreamId,
};

use crate::engine::ServeError;

/// One span of a captured job schedule: operation name, class (engine),
/// the capture-time stream index, and the exact charged duration.
#[derive(Debug, Clone)]
pub(crate) struct TemplateSpan {
    pub name: String,
    pub class: OpClass,
    pub stream: usize,
    pub dur_us: f64,
}

/// The measured schedule of one job shape, keyed by its frame count.
#[derive(Debug, Clone)]
pub struct JobTemplate {
    /// Frames a job of this shape charges (functional + replayed).
    pub total_frames: usize,
    /// Simulated duration of the job on an idle device, µs.
    pub dur_us: f64,
    pub(crate) spans: Vec<TemplateSpan>,
    pub(crate) stats: RunStats,
}

impl JobTemplate {
    /// Measure a `total_frames`-frame job on `device` and capture its
    /// schedule. `probe_frames` supplies at least one functional frame (the
    /// scheduler measures frame 0 and replays the rest, so one frame is
    /// enough); the probe's outputs are discarded. The device is left
    /// synchronized — callers typically probe on a scratch clone so the
    /// serving fleet's clocks stay untouched.
    pub fn capture(
        plan: &LaunchPlan<'_>,
        device: &mut Device,
        exec: &ExecOptions,
        probe_frames: &[Vec<NdArray<i64>>],
        total_frames: usize,
    ) -> Result<JobTemplate, ServeError> {
        if probe_frames.is_empty() {
            return Err(ServeError::Config(
                "template capture needs at least one functional probe frame".into(),
            ));
        }
        let span_mark = device.profiler.spans().count();
        let t0 = device.now_us();
        let opts = ExecOptions { total_frames, ..*exec };
        let (_, stats) = BatchScheduler::new(plan)
            .run(device, probe_frames, &opts)
            .map_err(ServeError::Schedule)?;
        let dur_us = device.now_us() - t0;
        let spans = device
            .profiler
            .spans()
            .skip(span_mark)
            .map(|sp| TemplateSpan {
                name: sp.name.clone(),
                class: sp.class,
                stream: sp.stream,
                dur_us: sp.duration_us(),
            })
            .collect();
        Ok(JobTemplate { total_frames, dur_us, spans, stats })
    }

    /// Replay the captured schedule on `device`, which must be idle
    /// (synchronized). Capture-time stream indices are mapped, in order of
    /// first appearance, onto `replay_streams` — the device's dedicated
    /// replay stream set, grown on demand. Returns the per-job
    /// [`RunStats`]; the device ends synchronized, its clock advanced by
    /// [`JobTemplate::dur_us`] up to f64 accumulation ulps (the replay runs
    /// at a different clock offset than the capture, and summation is not
    /// shift-invariant at the last bit). The drift is deterministic —
    /// pure IEEE arithmetic, no libm — so replayed traces remain
    /// golden-able byte for byte.
    pub(crate) fn replay(
        &self,
        device: &mut Device,
        replay_streams: &mut Vec<StreamId>,
    ) -> Result<RunStats, ScheduleError> {
        // Map capture-time stream indices -> dense replay-stream slots.
        let mut slot_of: Vec<(usize, usize)> = Vec::new();
        for sp in &self.spans {
            let slot = match slot_of.iter().find(|(s, _)| *s == sp.stream) {
                Some(&(_, slot)) => slot,
                None => {
                    let slot = slot_of.len();
                    slot_of.push((sp.stream, slot));
                    slot
                }
            };
            while replay_streams.len() <= slot {
                if replay_streams.is_empty() {
                    replay_streams.push(StreamId::DEFAULT);
                } else {
                    replay_streams.push(device.create_stream());
                }
            }
            device
                .replay_on(&sp.name, sp.class, sp.dur_us, replay_streams[slot])
                .map_err(|e| ScheduleError::Plan(format!("template replay: {e}")))?;
        }
        device.synchronize();
        Ok(self.stats.clone())
    }
}
