//! Serving-run summaries: throughput, tail latency, per-tenant accounting.

use simgpu::RunStats;

use crate::engine::JobOutcome;

/// Per-tenant accounting for one serving run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantStats {
    /// Tenant id (index into [`crate::ServeConfig::tenant_weights`]).
    pub tenant: usize,
    /// Jobs that ran to completion.
    pub completed: usize,
    /// Jobs shed by admission control.
    pub shed: usize,
    /// Frames charged by the tenant's completed jobs.
    pub frames: usize,
}

/// The result of serving one arrival trace.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Per-job outcome, indexed like the input trace.
    pub outcomes: Vec<JobOutcome>,
    /// Execution counters accumulated over every completed job.
    pub stats: RunStats,
    /// Jobs that ran to completion.
    pub completed: usize,
    /// Jobs shed by admission control.
    pub shed: usize,
    /// Frames charged by completed jobs (functional + timing-replayed).
    pub total_frames: usize,
    /// Trace-timeline completion time of the last job, µs.
    pub makespan_us: f64,
    /// Per-tenant accounting, indexed by tenant id.
    pub tenants: Vec<TenantStats>,
}

impl ServeReport {
    /// Served frames per second of trace time: `total_frames` over
    /// [`ServeReport::makespan_us`]. Zero when nothing completed.
    pub fn throughput_fps(&self) -> f64 {
        if self.makespan_us <= 0.0 {
            return 0.0;
        }
        self.total_frames as f64 / (self.makespan_us / 1e6)
    }

    /// Job latencies (`end − submit`, µs) of completed jobs, sorted
    /// ascending. Shed jobs have no latency — they are counted in
    /// [`ServeReport::shed`], not here.
    pub fn latencies_us(&self, jobs_submit_us: &[f64]) -> Vec<f64> {
        let mut lat: Vec<f64> = self
            .outcomes
            .iter()
            .zip(jobs_submit_us)
            .filter_map(|(o, &submit)| match o {
                JobOutcome::Completed { end_us, .. } => Some(end_us - submit),
                JobOutcome::Shed { .. } => None,
            })
            .collect();
        lat.sort_by(f64::total_cmp);
        lat
    }

    /// Nearest-rank percentile (`p` in 0..=100) over completed-job
    /// latencies. Returns 0 when nothing completed.
    pub fn latency_percentile_us(&self, jobs_submit_us: &[f64], p: f64) -> f64 {
        let lat = self.latencies_us(jobs_submit_us);
        percentile_nearest_rank(&lat, p)
    }
}

/// Nearest-rank percentile over an ascending-sorted slice: the smallest
/// value such that at least `p`% of samples are ≤ it. Deterministic and
/// interpolation-free, so golden-able.
pub(crate) fn percentile_nearest_rank(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_percentiles() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile_nearest_rank(&v, 50.0), 50.0);
        assert_eq!(percentile_nearest_rank(&v, 99.0), 99.0);
        assert_eq!(percentile_nearest_rank(&v, 100.0), 100.0);
        assert_eq!(percentile_nearest_rank(&[7.0], 50.0), 7.0);
        assert_eq!(percentile_nearest_rank(&[], 50.0), 0.0);
    }
}
