//! Batch-serving front-end over a simulated device [`Fleet`].
//!
//! This crate is the "millions of users" layer of the reproduction: it takes
//! the route-agnostic [`LaunchPlan`](simgpu::LaunchPlan) that PR 4 made
//! runnable on any device, a [`Fleet`](simgpu::Fleet) of independent
//! simulated devices, and an *open-loop arrival trace* of downscale jobs,
//! and serves the trace through a production-shaped front-end:
//!
//! - **Sharding** — each arriving job is pinned to one device by a
//!   [`ShardPolicy`]: round-robin, least-loaded-by-simulated-clock, or
//!   sticky-by-tenant.
//! - **Admission control** — every device carries a bounded waiting queue
//!   ([`ServeConfig::queue_capacity`]); arrivals beyond the bound are *shed*
//!   at the door with a profiler note, never half-executed.
//! - **Weighted tenant fairness** — when a device frees up, the next job is
//!   the waiting job whose tenant has the smallest granted-frames/weight
//!   ratio, so no tenant starves while any capacity exists.
//! - **Graceful degradation** — jobs execute through the shared
//!   [`BatchScheduler`](simgpu::BatchScheduler), so the PR 2 OOM degradation
//!   ladder doubles as per-job load-shedding under memory pressure: a job
//!   retries at half the lanes instead of failing, with the ladder note
//!   visible in the fleet's merged profiler.
//!
//! Everything is discrete-event simulation on the deterministic simulator:
//! no wall clock, no threads, no randomness. Time has two layers — each
//! device's own clock (advanced only by the work it executes) and the
//! arrival timeline (job submit/start/end timestamps). A device that sits
//! idle does not advance its clock; a job's latency is measured on the
//! arrival timeline as `end − submit`.
//!
//! Traces with thousands of jobs stay cheap through *replay templates*
//! ([`JobTemplate`]): one functional job per distinct job shape measures the
//! exact span schedule once, and replay-only jobs (no frame payload) re-run
//! that schedule through [`Device::replay_on`](simgpu::Device::replay_on)
//! for exact timing at zero compute — the same mechanism the
//! `BatchScheduler` already uses to extend a batch past its functional
//! frames.

#![warn(missing_docs)]

mod config;
mod engine;
mod report;
mod template;

pub use config::{ServeConfig, ShardPolicy};
pub use engine::{serve, serve_with_templates, Job, JobOutcome, ServeError};
pub use report::{ServeReport, TenantStats};
pub use template::JobTemplate;
