//! Serving-layer configuration: sharding policy, admission bound, tenant
//! weights — all validated up front with typed errors, mirroring the
//! `streams: 0` fix from the execution layer.

use crate::engine::ServeError;
use simgpu::ExecOptions;

/// How arriving jobs are pinned to devices.
///
/// Every policy is deterministic — given the same trace and fleet width it
/// always produces the same assignment — and none of them affect job
/// *outputs*, only queueing and latency: frame results never depend on which
/// device computed them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardPolicy {
    /// Arrival `k` goes to device `k % fleet.len()`. Oblivious and fair in
    /// expectation; ignores queue depth.
    RoundRobin,
    /// Each arrival goes to the device with the fewest outstanding jobs
    /// (waiting + running), breaking ties by the earlier simulated
    /// free-time and then the lower device index. Tracks load on the
    /// simulated clock only — no wall-clock, no estimates.
    LeastLoaded,
    /// Tenant `t` always lands on device `t % fleet.len()`: perfect cache
    /// affinity per tenant, at the price of hot-tenant imbalance.
    StickyByTenant,
}

impl ShardPolicy {
    /// Short stable name used in reports and bench JSON.
    pub fn name(self) -> &'static str {
        match self {
            ShardPolicy::RoundRobin => "round-robin",
            ShardPolicy::LeastLoaded => "least-loaded",
            ShardPolicy::StickyByTenant => "sticky-by-tenant",
        }
    }
}

/// Configuration for one serving run.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Job→device pinning policy.
    pub policy: ShardPolicy,
    /// Bound on each device's waiting queue (running job excluded). An
    /// arrival that finds its device's queue at this depth is shed at the
    /// door. Must be at least 1 — a zero-capacity queue would silently shed
    /// every burst, which is a configuration mistake, not a policy.
    pub queue_capacity: usize,
    /// Weight per tenant id (`tenant_weights[t]` is tenant `t`'s share).
    /// Dequeue order minimizes granted-frames/weight, so a weight-3 tenant
    /// gets three frames for every one a weight-1 tenant gets under
    /// contention. Every weight must be nonzero: a zero weight is an
    /// infinite-starvation request and is rejected.
    pub tenant_weights: Vec<u64>,
    /// Execution options forwarded to every per-job [`simgpu::BatchScheduler`]
    /// run (streams, pool, degradation ladder, host cost, planopt level).
    pub exec: ExecOptions,
}

impl ServeConfig {
    /// A conservative default: round-robin, queue depth 16, one tenant of
    /// weight 1, default execution options.
    pub fn new(policy: ShardPolicy) -> ServeConfig {
        ServeConfig {
            policy,
            queue_capacity: 16,
            tenant_weights: vec![1],
            exec: ExecOptions::default(),
        }
    }

    /// Validate the configuration, rejecting degenerate knobs with typed
    /// [`ServeError::Config`] errors instead of panics or silent no-op runs:
    /// zero queue capacity, an empty tenant table, any zero tenant weight,
    /// and everything [`ExecOptions::validate`] already rejects (e.g.
    /// `streams: 0`). Fleet width is validated where fleets are built —
    /// [`simgpu::Fleet::homogeneous`] rejects `devices: 0` the same way.
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.queue_capacity == 0 {
            return Err(ServeError::Config(
                "queue_capacity must be >= 1 (0 would shed every queued arrival)".into(),
            ));
        }
        if self.tenant_weights.is_empty() {
            return Err(ServeError::Config("tenant_weights must name at least one tenant".into()));
        }
        if let Some(t) = self.tenant_weights.iter().position(|&w| w == 0) {
            return Err(ServeError::Config(format!(
                "tenant {t} has weight 0; zero-weight tenants would starve forever"
            )));
        }
        self.exec.validate().map_err(ServeError::Config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_validates() {
        assert!(ServeConfig::new(ShardPolicy::RoundRobin).validate().is_ok());
    }

    #[test]
    fn zero_queue_capacity_is_rejected() {
        let mut cfg = ServeConfig::new(ShardPolicy::RoundRobin);
        cfg.queue_capacity = 0;
        let err = cfg.validate();
        assert!(
            matches!(&err, Err(ServeError::Config(m)) if m.contains("queue_capacity")),
            "{err:?}"
        );
    }

    #[test]
    fn zero_tenant_weight_is_rejected() {
        let mut cfg = ServeConfig::new(ShardPolicy::LeastLoaded);
        cfg.tenant_weights = vec![2, 0, 1];
        let err = cfg.validate();
        assert!(
            matches!(&err, Err(ServeError::Config(m)) if m.contains("tenant 1 has weight 0")),
            "{err:?}"
        );
    }

    #[test]
    fn empty_tenant_table_is_rejected() {
        let mut cfg = ServeConfig::new(ShardPolicy::StickyByTenant);
        cfg.tenant_weights = Vec::new();
        assert!(matches!(cfg.validate(), Err(ServeError::Config(_))));
    }

    #[test]
    fn exec_options_are_validated_too() {
        let mut cfg = ServeConfig::new(ShardPolicy::RoundRobin);
        cfg.exec.streams = 0;
        let err = cfg.validate();
        assert!(matches!(&err, Err(ServeError::Config(m)) if m.contains("streams")), "{err:?}");
    }
}
