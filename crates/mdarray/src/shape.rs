//! Array extents and row-major stride arithmetic.

use crate::MdError;

/// The extents of a dense, row-major multidimensional array.
///
/// A `Shape` of rank `r` describes arrays indexed by `r`-element index vectors
/// `ix` with `0 <= ix[d] < dims[d]`. The linear offset of an index is
/// `sum(ix[d] * stride[d])` where strides are the usual row-major products of
/// trailing extents.
///
/// Rank-0 shapes are permitted and describe scalars (one element, empty index).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Create a shape from its extents.
    pub fn new(dims: Vec<usize>) -> Self {
        Shape { dims }
    }

    /// The scalar (rank-0) shape.
    pub fn scalar() -> Self {
        Shape { dims: Vec::new() }
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Extents as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Extent of dimension `d`. Panics if `d >= rank`.
    pub fn dim(&self, d: usize) -> usize {
        self.dims[d]
    }

    /// Total number of elements (product of extents; 1 for scalars).
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// True when the shape contains no elements (some extent is zero).
    pub fn is_empty(&self) -> bool {
        self.dims.contains(&0)
    }

    /// Row-major strides for this shape.
    ///
    /// `strides()[d]` is the number of elements separating consecutive values
    /// of index component `d`.
    pub fn strides(&self) -> Vec<usize> {
        let mut s = vec![1usize; self.rank()];
        for d in (0..self.rank().saturating_sub(1)).rev() {
            s[d] = s[d + 1] * self.dims[d + 1];
        }
        s
    }

    /// Linear (row-major) offset of `index`, or an error if out of bounds.
    pub fn offset_of(&self, index: &[usize]) -> Result<usize, MdError> {
        if index.len() != self.rank() {
            return Err(MdError::RankMismatch { expected: self.rank(), actual: index.len() });
        }
        let mut off = 0usize;
        let mut stride = 1usize;
        for d in (0..self.rank()).rev() {
            if index[d] >= self.dims[d] {
                return Err(MdError::OutOfBounds {
                    index: index.to_vec(),
                    shape: self.dims.clone(),
                });
            }
            off += index[d] * stride;
            stride *= self.dims[d];
        }
        Ok(off)
    }

    /// Linear offset without bounds checks beyond debug assertions.
    ///
    /// Used on hot paths where the caller has already validated the index.
    #[inline]
    pub fn offset_unchecked(&self, index: &[usize]) -> usize {
        debug_assert_eq!(index.len(), self.rank());
        let mut off = 0usize;
        let mut stride = 1usize;
        for d in (0..self.rank()).rev() {
            debug_assert!(index[d] < self.dims[d], "index {index:?} oob for {:?}", self.dims);
            off += index[d] * stride;
            stride *= self.dims[d];
        }
        off
    }

    /// Convert a linear offset back into a multidimensional index.
    pub fn index_of(&self, mut offset: usize) -> Vec<usize> {
        let mut ix = vec![0usize; self.rank()];
        for d in (0..self.rank()).rev() {
            let e = self.dims[d].max(1);
            ix[d] = offset % e;
            offset /= e;
        }
        ix
    }

    /// Concatenate two shapes: the result indexes a nesting of `self` over `other`.
    ///
    /// This is the operation the paper uses when an intermediate array's shape is
    /// "a concatenation of the repetition space shape and the pattern shape".
    pub fn concat(&self, other: &Shape) -> Shape {
        let mut dims = self.dims.clone();
        dims.extend_from_slice(&other.dims);
        Shape { dims }
    }

    /// Wrap a possibly-negative index componentwise into this shape (modulo extents).
    ///
    /// ArrayOL tilers address arrays modulo their shape; this implements the
    /// `mod s_array` of the tiler equations for signed offsets.
    pub fn wrap(&self, index: &[i64]) -> Vec<usize> {
        debug_assert_eq!(index.len(), self.rank());
        index
            .iter()
            .zip(&self.dims)
            .map(|(&i, &d)| {
                let d = d as i64;
                (((i % d) + d) % d) as usize
            })
            .collect()
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::new(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims.to_vec())
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape::new(dims.to_vec())
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_shape_has_one_element() {
        let s = Shape::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
        assert_eq!(s.offset_of(&[]), Ok(0));
    }

    #[test]
    fn row_major_strides() {
        let s = Shape::new(vec![2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
        assert_eq!(s.len(), 24);
    }

    #[test]
    fn offset_roundtrip() {
        let s = Shape::new(vec![3, 5, 7]);
        for off in 0..s.len() {
            let ix = s.index_of(off);
            assert_eq!(s.offset_of(&ix).unwrap(), off);
            assert_eq!(s.offset_unchecked(&ix), off);
        }
    }

    #[test]
    fn offset_rejects_out_of_bounds() {
        let s = Shape::new(vec![2, 2]);
        assert!(matches!(s.offset_of(&[2, 0]), Err(MdError::OutOfBounds { .. })));
        assert!(matches!(s.offset_of(&[0]), Err(MdError::RankMismatch { .. })));
    }

    #[test]
    fn concat_appends_dims() {
        let a = Shape::new(vec![1080, 240]);
        let b = Shape::new(vec![11]);
        assert_eq!(a.concat(&b).dims(), &[1080, 240, 11]);
    }

    #[test]
    fn wrap_handles_negative_indices() {
        let s = Shape::new(vec![10, 4]);
        assert_eq!(s.wrap(&[-1, 5]), vec![9, 1]);
        assert_eq!(s.wrap(&[10, -4]), vec![0, 0]);
        assert_eq!(s.wrap(&[3, 3]), vec![3, 3]);
    }

    #[test]
    fn empty_shape_detection() {
        assert!(Shape::new(vec![3, 0, 2]).is_empty());
        assert!(!Shape::new(vec![3, 1, 2]).is_empty());
        assert_eq!(Shape::new(vec![3, 0, 2]).len(), 0);
    }

    #[test]
    fn display_formats_like_sac_shape() {
        assert_eq!(Shape::new(vec![1080, 1920]).to_string(), "[1080,1920]");
        assert_eq!(Shape::scalar().to_string(), "[]");
    }
}
