//! Elementwise operations and reductions over [`NdArray`]s of integers.
//!
//! The SaC subset in this workspace computes exclusively on machine integers
//! (video pixels are 8-bit channel values widened to `i64` during filtering),
//! so the operation set here is integer-flavoured: saturating/wrapping variants
//! are not needed, but truncating division and Euclidean remainder are, because
//! the downscaler's interpolation kernel is `tmp / 6 - tmp % 6`.

use crate::{MdError, NdArray};

/// Elementwise sum of two same-shaped arrays.
pub fn add(a: &NdArray<i64>, b: &NdArray<i64>) -> Result<NdArray<i64>, MdError> {
    a.zip_with(b, |x, y| x + y)
}

/// Elementwise difference.
pub fn sub(a: &NdArray<i64>, b: &NdArray<i64>) -> Result<NdArray<i64>, MdError> {
    a.zip_with(b, |x, y| x - y)
}

/// Elementwise product.
pub fn mul(a: &NdArray<i64>, b: &NdArray<i64>) -> Result<NdArray<i64>, MdError> {
    a.zip_with(b, |x, y| x * y)
}

/// Add a scalar to every element.
pub fn add_scalar(a: &NdArray<i64>, s: i64) -> NdArray<i64> {
    a.map(|x| x + s)
}

/// Multiply every element by a scalar.
pub fn mul_scalar(a: &NdArray<i64>, s: i64) -> NdArray<i64> {
    a.map(|x| x * s)
}

/// Sum of all elements.
pub fn sum(a: &NdArray<i64>) -> i64 {
    a.as_slice().iter().sum()
}

/// Minimum element, or `None` for empty arrays.
pub fn min(a: &NdArray<i64>) -> Option<i64> {
    a.as_slice().iter().copied().min()
}

/// Maximum element, or `None` for empty arrays.
pub fn max(a: &NdArray<i64>) -> Option<i64> {
    a.as_slice().iter().copied().max()
}

/// A simple positional checksum used by tests and the frame sink to compare
/// pipelines without storing full frames: `sum(v[i] * (i * 2 + 1))` in
/// wrapping arithmetic.
pub fn checksum(a: &NdArray<i64>) -> u64 {
    let mut acc = 0u64;
    for (i, &v) in a.as_slice().iter().enumerate() {
        acc = acc.wrapping_add((v as u64).wrapping_mul((i as u64) * 2 + 1));
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a2x2(vals: [i64; 4]) -> NdArray<i64> {
        NdArray::from_vec([2, 2], vals.to_vec()).unwrap()
    }

    #[test]
    fn elementwise_arithmetic() {
        let a = a2x2([1, 2, 3, 4]);
        let b = a2x2([10, 20, 30, 40]);
        assert_eq!(add(&a, &b).unwrap().as_slice(), &[11, 22, 33, 44]);
        assert_eq!(sub(&b, &a).unwrap().as_slice(), &[9, 18, 27, 36]);
        assert_eq!(mul(&a, &a).unwrap().as_slice(), &[1, 4, 9, 16]);
    }

    #[test]
    fn scalar_ops() {
        let a = a2x2([1, 2, 3, 4]);
        assert_eq!(add_scalar(&a, 5).as_slice(), &[6, 7, 8, 9]);
        assert_eq!(mul_scalar(&a, -1).as_slice(), &[-1, -2, -3, -4]);
    }

    #[test]
    fn reductions() {
        let a = a2x2([4, -2, 9, 1]);
        assert_eq!(sum(&a), 12);
        assert_eq!(min(&a), Some(-2));
        assert_eq!(max(&a), Some(9));
        let empty = NdArray::from_vec([0], Vec::<i64>::new()).unwrap();
        assert_eq!(min(&empty), None);
    }

    #[test]
    fn checksum_is_position_sensitive() {
        let a = a2x2([1, 2, 3, 4]);
        let b = a2x2([4, 3, 2, 1]);
        assert_ne!(checksum(&a), checksum(&b));
        assert_eq!(checksum(&a), checksum(&a.clone()));
    }
}
