#![warn(missing_docs)]

//! # mdarray — multidimensional array substrate
//!
//! A small, dependency-free multidimensional array library shared by every other
//! crate in this workspace. It provides:
//!
//! * [`Shape`] — a rank-polymorphic extent descriptor with row-major strides,
//! * [`NdArray`] — a dense, row-major, heap-backed array over any `Clone` element,
//! * [`IndexIter`] — lexicographic iteration over all indices of a shape,
//! * elementwise operations and reductions ([`ops`]),
//! * lightweight borrowed [`view::ArrayView`]s for zero-copy sub-array access.
//!
//! Both the ArrayOL executor and the SaC interpreter manipulate frames through this
//! crate, and the GPU simulator's buffers are flat `Vec<i32>` images of these arrays,
//! so round-tripping between the two is cheap and well-tested.
//!
//! ## Example
//!
//! ```
//! use mdarray::{NdArray, Shape};
//!
//! // A 2x3 array filled from a function of the index.
//! let a = NdArray::from_fn(Shape::new(vec![2, 3]), |ix| (ix[0] * 10 + ix[1]) as i32);
//! assert_eq!(a[&[1, 2]], 12);
//! assert_eq!(a.shape().len(), 6);
//!
//! let b = a.map(|v| v * 2);
//! assert_eq!(b[&[1, 2]], 24);
//! ```

pub mod array;
pub mod iter;
pub mod ops;
pub mod shape;
pub mod view;

pub use array::NdArray;
pub use iter::IndexIter;
pub use shape::Shape;
pub use view::ArrayView;

/// Errors reported by shape-sensitive operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // variant payload fields are self-describing
pub enum MdError {
    /// Two shapes that were required to match did not.
    ShapeMismatch { left: Vec<usize>, right: Vec<usize> },
    /// An index was out of bounds for the given shape.
    OutOfBounds { index: Vec<usize>, shape: Vec<usize> },
    /// The rank (number of dimensions) was not the one required.
    RankMismatch { expected: usize, actual: usize },
}

impl std::fmt::Display for MdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MdError::ShapeMismatch { left, right } => {
                write!(f, "shape mismatch: {left:?} vs {right:?}")
            }
            MdError::OutOfBounds { index, shape } => {
                write!(f, "index {index:?} out of bounds for shape {shape:?}")
            }
            MdError::RankMismatch { expected, actual } => {
                write!(f, "rank mismatch: expected {expected}, got {actual}")
            }
        }
    }
}

impl std::error::Error for MdError {}
