//! Borrowed, zero-copy sub-array views.

use crate::{MdError, NdArray, Shape};

/// A borrowed rectangular window into an [`NdArray`].
///
/// The view selects, for each dimension, a half-open range `[start, start+len)`
/// of the parent array. Reads go through the parent's buffer with no copying.
///
/// ```
/// use mdarray::{ArrayView, NdArray};
/// let a = NdArray::from_fn([4, 4], |ix| (ix[0] * 4 + ix[1]) as i64);
/// let v = ArrayView::window(&a, &[1, 1], &[2, 2]).unwrap();
/// assert_eq!(v.get(&[0, 0]).unwrap(), &5);
/// assert_eq!(v.to_array().as_slice(), &[5, 6, 9, 10]);
/// ```
pub struct ArrayView<'a, T> {
    parent: &'a NdArray<T>,
    start: Vec<usize>,
    shape: Shape,
}

impl<'a, T: Clone> ArrayView<'a, T> {
    /// A window of extents `lens` anchored at `start` in `parent`.
    pub fn window(
        parent: &'a NdArray<T>,
        start: &[usize],
        lens: &[usize],
    ) -> Result<Self, MdError> {
        if start.len() != parent.rank() || lens.len() != parent.rank() {
            return Err(MdError::RankMismatch { expected: parent.rank(), actual: start.len() });
        }
        for d in 0..start.len() {
            if start[d] + lens[d] > parent.shape().dim(d) {
                return Err(MdError::OutOfBounds {
                    index: start.to_vec(),
                    shape: parent.shape().dims().to_vec(),
                });
            }
        }
        Ok(ArrayView { parent, start: start.to_vec(), shape: Shape::new(lens.to_vec()) })
    }

    /// The view's shape (the window extents).
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Checked element access relative to the window origin.
    pub fn get(&self, index: &[usize]) -> Result<&T, MdError> {
        self.shape.offset_of(index)?; // bounds within the window
        let abs: Vec<usize> = index.iter().zip(&self.start).map(|(i, s)| i + s).collect();
        self.parent.get(&abs)
    }

    /// Materialise the window as an owned array.
    pub fn to_array(&self) -> NdArray<T> {
        NdArray::from_fn(self.shape.clone(), |ix| self.get(ix).unwrap().clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_validates_bounds() {
        let a = NdArray::from_fn([3, 3], |ix| ix[0] * 3 + ix[1]);
        assert!(ArrayView::window(&a, &[2, 2], &[2, 1]).is_err());
        assert!(ArrayView::window(&a, &[0], &[1]).is_err());
        assert!(ArrayView::window(&a, &[2, 2], &[1, 1]).is_ok());
    }

    #[test]
    fn reads_are_relative_to_origin() {
        let a = NdArray::from_fn([4, 5], |ix| (ix[0] * 5 + ix[1]) as i32);
        let v = ArrayView::window(&a, &[2, 1], &[2, 3]).unwrap();
        assert_eq!(*v.get(&[0, 0]).unwrap(), 11);
        assert_eq!(*v.get(&[1, 2]).unwrap(), 18);
        assert!(v.get(&[2, 0]).is_err());
    }

    #[test]
    fn to_array_copies_window() {
        let a = NdArray::from_fn([2, 4], |ix| (ix[0] * 4 + ix[1]) as i64);
        let v = ArrayView::window(&a, &[0, 2], &[2, 2]).unwrap();
        let w = v.to_array();
        assert_eq!(w.shape().dims(), &[2, 2]);
        assert_eq!(w.as_slice(), &[2, 3, 6, 7]);
    }
}
