//! Dense row-major multidimensional arrays.

use crate::{IndexIter, MdError, Shape};

/// A dense, row-major, heap-backed multidimensional array.
///
/// Elements live in a single contiguous `Vec<T>`; indexing is by `&[usize]`
/// index vectors whose length equals the array's rank. Rank-0 arrays hold a
/// single scalar.
///
/// This is the value representation used by the SaC interpreter, the ArrayOL
/// executor, and the frame pipeline of the downscaler application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NdArray<T> {
    shape: Shape,
    data: Vec<T>,
}

impl<T: Clone> NdArray<T> {
    /// An array of the given shape with every element set to `fill`.
    pub fn filled(shape: impl Into<Shape>, fill: T) -> Self {
        let shape = shape.into();
        let len = shape.len();
        NdArray { shape, data: vec![fill; len] }
    }

    /// Build an array by evaluating `f` at every index (row-major order).
    pub fn from_fn(shape: impl Into<Shape>, mut f: impl FnMut(&[usize]) -> T) -> Self {
        let shape = shape.into();
        let mut data = Vec::with_capacity(shape.len());
        IndexIter::for_each_index(&shape, |ix| data.push(f(ix)));
        NdArray { shape, data }
    }

    /// Wrap an existing flat buffer. Errors if `data.len()` disagrees with the shape.
    pub fn from_vec(shape: impl Into<Shape>, data: Vec<T>) -> Result<Self, MdError> {
        let shape = shape.into();
        if shape.len() != data.len() {
            return Err(MdError::ShapeMismatch {
                left: shape.dims().to_vec(),
                right: vec![data.len()],
            });
        }
        Ok(NdArray { shape, data })
    }

    /// A rank-0 array holding one scalar.
    pub fn scalar(value: T) -> Self {
        NdArray { shape: Shape::scalar(), data: vec![value] }
    }

    /// The array's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The array's rank.
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the array holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow the flat element buffer (row-major).
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutably borrow the flat element buffer (row-major).
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consume the array, returning its flat buffer.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Checked element access.
    pub fn get(&self, index: &[usize]) -> Result<&T, MdError> {
        let off = self.shape.offset_of(index)?;
        Ok(&self.data[off])
    }

    /// Checked element assignment.
    pub fn set(&mut self, index: &[usize], value: T) -> Result<(), MdError> {
        let off = self.shape.offset_of(index)?;
        self.data[off] = value;
        Ok(())
    }

    /// Unchecked-in-release element read for hot paths.
    #[inline]
    pub fn get_unchecked(&self, index: &[usize]) -> &T {
        let off = self.shape.offset_unchecked(index);
        &self.data[off]
    }

    /// Unchecked-in-release element write for hot paths.
    #[inline]
    pub fn set_unchecked(&mut self, index: &[usize], value: T) {
        let off = self.shape.offset_unchecked(index);
        self.data[off] = value;
    }

    /// Apply `f` to every element, producing a new array of the same shape.
    pub fn map<U: Clone>(&self, f: impl FnMut(&T) -> U) -> NdArray<U> {
        NdArray { shape: self.shape.clone(), data: self.data.iter().map(f).collect() }
    }

    /// Combine two same-shaped arrays elementwise.
    pub fn zip_with<U: Clone, V: Clone>(
        &self,
        other: &NdArray<U>,
        mut f: impl FnMut(&T, &U) -> V,
    ) -> Result<NdArray<V>, MdError> {
        if self.shape != other.shape {
            return Err(MdError::ShapeMismatch {
                left: self.shape.dims().to_vec(),
                right: other.shape.dims().to_vec(),
            });
        }
        let data = self.data.iter().zip(&other.data).map(|(a, b)| f(a, b)).collect();
        Ok(NdArray { shape: self.shape.clone(), data })
    }

    /// Reinterpret the flat buffer under a new shape of equal length.
    pub fn reshape(&self, shape: impl Into<Shape>) -> Result<NdArray<T>, MdError> {
        let shape = shape.into();
        if shape.len() != self.data.len() {
            return Err(MdError::ShapeMismatch {
                left: shape.dims().to_vec(),
                right: self.shape.dims().to_vec(),
            });
        }
        Ok(NdArray { shape, data: self.data.clone() })
    }

    /// Extract the rank-(r-k) sub-array at a length-k index prefix.
    ///
    /// For a `[1080,240,11]` intermediate this selects e.g. the 11-element
    /// tile at repetition index `[i, j]` — the `input[rep]` selection of the
    /// paper's task function.
    pub fn subarray(&self, prefix: &[usize]) -> Result<NdArray<T>, MdError> {
        if prefix.len() > self.rank() {
            return Err(MdError::RankMismatch { expected: self.rank(), actual: prefix.len() });
        }
        let rest: Shape = Shape::new(self.shape.dims()[prefix.len()..].to_vec());
        // Offset of the prefix with zeros appended.
        let mut full = prefix.to_vec();
        full.extend(std::iter::repeat_n(0, self.rank() - prefix.len()));
        let start = self.shape.offset_of(&full)?;
        let len = rest.len();
        Ok(NdArray { shape: rest, data: self.data[start..start + len].to_vec() })
    }
}

impl<T: Clone> std::ops::Index<&[usize]> for NdArray<T> {
    type Output = T;

    fn index(&self, index: &[usize]) -> &T {
        self.get(index).expect("NdArray index out of bounds")
    }
}

impl<T: Clone, const N: usize> std::ops::Index<&[usize; N]> for NdArray<T> {
    type Output = T;

    fn index(&self, index: &[usize; N]) -> &T {
        self.get(index.as_slice()).expect("NdArray index out of bounds")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_fills_row_major() {
        let a = NdArray::from_fn([2, 3], |ix| ix[0] * 3 + ix[1]);
        assert_eq!(a.as_slice(), &[0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn filled_and_set_get() {
        let mut a = NdArray::filled([2, 2], 7i32);
        a.set(&[1, 0], -1).unwrap();
        assert_eq!(*a.get(&[1, 0]).unwrap(), -1);
        assert_eq!(*a.get(&[0, 0]).unwrap(), 7);
        assert!(a.set(&[2, 0], 0).is_err());
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(NdArray::from_vec([2, 2], vec![1, 2, 3]).is_err());
        let a = NdArray::from_vec([2, 2], vec![1, 2, 3, 4]).unwrap();
        assert_eq!(a[&[1, 1]], 4);
    }

    #[test]
    fn scalar_arrays() {
        let s = NdArray::scalar(42);
        assert_eq!(s.rank(), 0);
        assert_eq!(*s.get(&[]).unwrap(), 42);
    }

    #[test]
    fn map_preserves_shape() {
        let a = NdArray::from_fn([3, 4], |ix| (ix[0] + ix[1]) as i64);
        let b = a.map(|v| v * v);
        assert_eq!(b.shape(), a.shape());
        assert_eq!(b[&[2, 3]], 25);
    }

    #[test]
    fn zip_with_rejects_mismatched_shapes() {
        let a = NdArray::filled([2, 2], 1);
        let b = NdArray::filled([2, 3], 1);
        assert!(a.zip_with(&b, |x, y| x + y).is_err());
        let c = NdArray::filled([2, 2], 2);
        let d = a.zip_with(&c, |x, y| x + y).unwrap();
        assert_eq!(d.as_slice(), &[3, 3, 3, 3]);
    }

    #[test]
    fn reshape_roundtrip() {
        let a = NdArray::from_fn([2, 6], |ix| ix[0] * 6 + ix[1]);
        let b = a.reshape([3, 4]).unwrap();
        assert_eq!(b[&[2, 3]], 11);
        assert!(a.reshape([5, 5]).is_err());
    }

    #[test]
    fn subarray_selects_tile() {
        // Shape [2, 3, 4]: subarray([1, 2]) is the last 4-element row.
        let a = NdArray::from_fn([2, 3, 4], |ix| ix[0] * 100 + ix[1] * 10 + ix[2]);
        let t = a.subarray(&[1, 2]).unwrap();
        assert_eq!(t.shape().dims(), &[4]);
        assert_eq!(t.as_slice(), &[120, 121, 122, 123]);
        // Full-rank prefix selects a scalar.
        let s = a.subarray(&[0, 1, 2]).unwrap();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.as_slice(), &[12]);
    }
}
