//! Lexicographic index iteration.

use crate::Shape;

/// Iterates every index of a [`Shape`] in row-major (lexicographic) order.
///
/// The iterator yields `Vec<usize>` index vectors; for hot loops prefer
/// [`IndexIter::for_each_index`], which reuses a single buffer and avoids
/// per-step allocation.
///
/// ```
/// use mdarray::{IndexIter, Shape};
/// let ixs: Vec<_> = IndexIter::new(&Shape::new(vec![2, 2])).collect();
/// assert_eq!(ixs, vec![vec![0, 0], vec![0, 1], vec![1, 0], vec![1, 1]]);
/// ```
pub struct IndexIter {
    dims: Vec<usize>,
    current: Vec<usize>,
    done: bool,
}

impl IndexIter {
    /// Start iterating the given shape. Empty shapes yield no indices;
    /// rank-0 shapes yield exactly one empty index.
    pub fn new(shape: &Shape) -> Self {
        IndexIter {
            dims: shape.dims().to_vec(),
            current: vec![0; shape.rank()],
            done: shape.is_empty(),
        }
    }

    /// Visit every index without allocating per step.
    pub fn for_each_index(shape: &Shape, mut f: impl FnMut(&[usize])) {
        if shape.is_empty() {
            return;
        }
        let dims = shape.dims();
        let mut ix = vec![0usize; dims.len()];
        loop {
            f(&ix);
            // Odometer increment from the last dimension.
            let mut d = dims.len();
            loop {
                if d == 0 {
                    return;
                }
                d -= 1;
                ix[d] += 1;
                if ix[d] < dims[d] {
                    break;
                }
                ix[d] = 0;
            }
        }
    }
}

impl Iterator for IndexIter {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        if self.done {
            return None;
        }
        let out = self.current.clone();
        let mut d = self.dims.len();
        loop {
            if d == 0 {
                self.done = true;
                break;
            }
            d -= 1;
            self.current[d] += 1;
            if self.current[d] < self.dims[d] {
                break;
            }
            self.current[d] = 0;
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iterates_in_row_major_order() {
        let s = Shape::new(vec![2, 3]);
        let got: Vec<_> = IndexIter::new(&s).collect();
        let want: Vec<Vec<usize>> =
            vec![vec![0, 0], vec![0, 1], vec![0, 2], vec![1, 0], vec![1, 1], vec![1, 2]];
        assert_eq!(got, want);
    }

    #[test]
    fn scalar_yields_single_empty_index() {
        let got: Vec<_> = IndexIter::new(&Shape::scalar()).collect();
        assert_eq!(got, vec![Vec::<usize>::new()]);
    }

    #[test]
    fn empty_shape_yields_nothing() {
        assert_eq!(IndexIter::new(&Shape::new(vec![0, 5])).count(), 0);
    }

    #[test]
    fn for_each_matches_iterator() {
        let s = Shape::new(vec![3, 2, 4]);
        let mut collected = Vec::new();
        IndexIter::for_each_index(&s, |ix| collected.push(ix.to_vec()));
        let via_iter: Vec<_> = IndexIter::new(&s).collect();
        assert_eq!(collected, via_iter);
        assert_eq!(collected.len(), s.len());
    }

    #[test]
    fn agrees_with_offsets() {
        let s = Shape::new(vec![4, 5]);
        for (off, ix) in IndexIter::new(&s).enumerate() {
            assert_eq!(s.offset_of(&ix).unwrap(), off);
        }
    }
}
