//! Quickstart: compile a small SaC program to (simulated) CUDA and run it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Walks the whole pipeline of the paper's SaC route on ten lines of SaC:
//! parse → inline/fold/lower → WITH-loop folding → one kernel per generator
//! → execution on the simulated GTX480, with the profile printed at the end.

use gpu_abstractions::{mdarray, sac_cuda, sac_lang, simgpu};
use mdarray::NdArray;
use sac_cuda::exec::{run_on_device, HostCost};
use sac_lang::opt::{optimize, ArgDesc, OptConfig};
use simgpu::device::Device;
use simgpu::profiler::{Group, OpClass};

const SRC: &str = r#"
int[*] brighten(int[*] img)
{
    out = with { (. <= iv <= .) : img[iv] + 32; } : genarray( shape(img), 0);
    return( out);
}

int[*] main(int[64,64] img)
{
    bright = brighten(img);
    edges = with {
        ([0,0] <= [i,j] < [64,63]) : bright[[i, j + 1]] - bright[[i, j]];
    } : genarray( [64,64], 0);
    return( edges);
}
"#;

fn main() {
    // 1. Parse and optimise: `brighten` is inlined, the two WITH-loops fold
    //    into one, and the result is lowered to the flat data-parallel form.
    let prog = sac_lang::parse_program(SRC).expect("parse");
    let args = [ArgDesc::Array { name: "img".into(), shape: vec![64, 64] }];
    let (flat, report) = optimize(&prog, "main", &args, &OptConfig::default()).expect("optimise");
    println!("WITH-loop folding performed {} fusion(s);", report.fold.folds);
    println!("the program compiles to {} CUDA kernel(s):\n", flat.generator_count());

    // 2. Generate kernels (one per generator) and inspect the CUDA source.
    let cuda = sac_cuda::compile_flat_program(&flat).expect("codegen");
    println!("{}", cuda.emit_cuda_source());

    // 3. Execute on the simulated GTX480.
    let img = NdArray::from_fn([64usize, 64], |ix| ((ix[0] * ix[1]) % 200) as i64);
    let mut device = Device::gtx480();
    let (result, stats) =
        run_on_device(&cuda, &mut device, &[img], HostCost::default()).expect("run");
    println!(
        "ran {} kernel launch(es), {} H2D / {} D2H transfer(s)",
        stats.launches, stats.h2d, stats.d2h
    );
    println!("result checksum: {}", mdarray::ops::checksum(&result));
    println!("simulated device time: {:.1} us\n", device.now_us());

    // 4. The profiler speaks the paper's language.
    println!(
        "{}",
        device.profiler.table(&[
            Group::kernels("Kernels", ""),
            Group::class("memcpyHtoDasync", OpClass::H2D),
            Group::class("memcpyDtoHasync", OpClass::D2H),
        ])
    );
}
