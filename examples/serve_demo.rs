//! The batch-serving front-end in miniature: a seeded open-loop arrival
//! trace of downscale jobs is sharded across a simulated device fleet,
//! and the serving report (throughput, tail latency, per-tenant service,
//! shedding) is printed alongside the fleet-wide profiler roll-up.
//!
//! ```sh
//! cargo run --release --example serve_demo [-- jobs] [--devices N]
//! ```
//!
//! Uses the CIF-sized scenario so it runs in seconds; `cargo run --release
//! -p bench --bin reproduce -- serve` does the full HD ablation with the
//! device-count and arrival-rate sweeps. The fleet's simulated clocks are
//! deterministic, so rerunning with the same flags reproduces every number
//! byte for byte.

use gpu_abstractions::{downscaler, serve, simgpu};

use bench::arrivals::arrival_trace;
use downscaler::frames::FrameGenerator;
use downscaler::pipelines::{build_gaspard, fused_gaspard_plan, reference_downscale};
use downscaler::Scenario;
use serve::{Job, JobOutcome, ServeConfig, ShardPolicy};
use simgpu::schedule::ExecOptions;
use simgpu::Fleet;

const TENANTS: usize = 3;

fn main() {
    let mut jobs_n: usize = 24;
    let mut devices: usize = 4;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--devices" {
            devices = args
                .next()
                .and_then(|v| v.parse().ok())
                .expect("--devices needs a positive integer");
        } else if let Ok(n) = a.parse() {
            jobs_n = n;
        }
    }

    let s = Scenario::cif();
    let route = build_gaspard(&s).expect("Gaspard route");
    let plan = fused_gaspard_plan(&route).expect("fused Gaspard plan");
    println!(
        "serving {jobs_n} downscale jobs ({}x{} -> {}x{}, 2 frames each) across {devices} \
         simulated GTX480s\n",
        s.rows,
        s.cols,
        s.out_shape().0,
        s.out_shape().1,
    );

    // A deterministic open-loop trace: arrivals do not wait for service.
    let gen = FrameGenerator::new(s.channels, s.rows, s.cols, 0xD05C);
    let trace = arrival_trace(0x5EED, jobs_n, 8_000.0, TENANTS);
    let jobs: Vec<Job> = trace
        .iter()
        .enumerate()
        .map(|(j, a)| {
            let frames = vec![gen.frame_channels(2 * j), gen.frame_channels(2 * j + 1)];
            Job::functional(j, a.tenant, a.submit_us, frames)
        })
        .collect();

    let cfg = ServeConfig {
        policy: ShardPolicy::LeastLoaded,
        queue_capacity: 8,
        tenant_weights: vec![2, 1, 1],
        exec: ExecOptions { streams: 2, pool: true, ..Default::default() },
    };
    let mut fleet = Fleet::gtx480(devices).expect("fleet");
    let report = serve::serve(&mut fleet, &plan, &jobs, &cfg).expect("serve");

    // Every completed job is checked against the golden CPU filters.
    for (j, o) in report.outcomes.iter().enumerate() {
        if let JobOutcome::Completed { outputs, .. } = o {
            for (k, planes) in outputs.iter().enumerate() {
                let expect = reference_downscale(&s, &gen.frame_rank3(2 * j + k));
                assert_eq!(FrameGenerator::stack(planes), expect, "job {j} frame {k} diverged");
            }
        }
    }

    let submits: Vec<f64> = jobs.iter().map(|j| j.submit_us).collect();
    println!(
        "policy {} | queue depth {} | tenant weights {:?}",
        cfg.policy.name(),
        cfg.queue_capacity,
        cfg.tenant_weights
    );
    println!(
        "completed {} / shed {} of {} jobs | {} frames | {:.1} frames/s | makespan {:.1} ms",
        report.completed,
        report.shed,
        jobs.len(),
        report.total_frames,
        report.throughput_fps(),
        report.makespan_us / 1e3
    );
    println!(
        "job latency p50 {:.2} ms, p99 {:.2} ms\n",
        report.latency_percentile_us(&submits, 50.0) / 1e3,
        report.latency_percentile_us(&submits, 99.0) / 1e3
    );

    println!("per-tenant service:");
    for t in &report.tenants {
        println!(
            "  tenant {} (weight {}): {} completed, {} shed, {} frames",
            t.tenant, cfg.tenant_weights[t.tenant], t.completed, t.shed, t.frames
        );
    }

    let merged = fleet.merged_profiler();
    println!(
        "\nfleet roll-up: {} kernel launches across {} devices",
        report.stats.launches, devices
    );
    for d in 0..fleet.len() {
        println!(
            "  device {}: clock {:.1} ms, kernel engine busy {:.1} ms",
            d,
            fleet.device(d).now_us() / 1e3,
            fleet.device(d).profiler.engine_busy_us(simgpu::profiler::OpClass::Kernel) / 1e3
        );
    }
    let shed_notes = merged.notes().filter(|n| n.starts_with("shed:")).count();
    if shed_notes > 0 {
        println!("  {shed_notes} admission-control shed notes in the merged profiler");
    }
}
