//! Building a new ArrayOL application from scratch: a 2-D block-mean
//! pyramid reducer, specified with tilers, validated, executed with the
//! reference executor, and pushed through the GASPARD2 chain onto the
//! simulated GPU.
//!
//! ```sh
//! cargo run --release --example custom_tiler
//! ```
//!
//! Demonstrates the abstractions the paper argues for: the application is
//! *only* tilers + an elementary function; the same specification runs on
//! the CPU (ArrayOL reference executor) and the GPU (generated OpenCL).

use gpu_abstractions::{arrayol, gaspard, mdarray, simgpu};

use arrayol::exec::{execute, ExecOptions};
use arrayol::{ApplicationGraph, IMat, Port, RepetitiveTask, TaskBody, Tiler};
use gaspard::model::{
    Allocation, Component, ComponentKind, Connection, ElementaryOp, Model, PartRef, Platform,
    Port as MPort, PortDir, Stereotype, TilerSpec,
};
use gaspard::transform::{deploy, schedule};
use mdarray::{NdArray, Shape};
use simgpu::device::Device;
use std::collections::HashMap;
use std::sync::Arc;

const N: usize = 64;
const B: usize = 4; // block edge

fn main() {
    // ---- 1. Pure ArrayOL: specify 4x4 block-sum reduction with tilers ----
    let mut g = ApplicationGraph::new();
    let input = g.declare_array("image", [N, N]);
    let reduced = g.declare_array("reduced", [N / B, N / B]);
    g.external_inputs.push(input);
    g.external_outputs.push(reduced);

    // Input tiler: a BxB pattern paving the image in BxB steps.
    let in_tiler = Tiler::new(
        vec![0, 0],
        IMat::from_rows(&[&[1, 0], &[0, 1]]),
        IMat::from_rows(&[&[B as i64, 0], &[0, B as i64]]),
    );
    // Output tiler: one scalar element per repetition (rank-0 pattern, so
    // the fitting matrix has zero columns).
    let out_tiler = Tiler::new(vec![0, 0], IMat::zeros(2, 0), IMat::identity(2));
    g.add_task(RepetitiveTask {
        name: "block_sum".into(),
        repetition: Shape::new(vec![N / B, N / B]),
        inputs: vec![Port::new("in", input, [B, B], in_tiler)],
        outputs: vec![Port::new("out", reduced, Shape::scalar(), out_tiler)],
        body: TaskBody::Elementary {
            kernel_name: "sum16".into(),
            f: Arc::new(|patterns| {
                vec![NdArray::scalar(patterns[0].as_slice().iter().sum::<i64>())]
            }),
        },
    });
    g.validate().expect("ArrayOL specification is well-formed");

    let image = NdArray::from_fn([N, N], |ix| ((ix[0] / B + ix[1] / B) % 7) as i64);
    let mut inputs = HashMap::new();
    inputs.insert(input, image.clone());
    let seq = execute(&g, &inputs, &ExecOptions::sequential()).expect("sequential run");
    let par = execute(&g, &inputs, &ExecOptions::parallel()).expect("parallel run");
    assert_eq!(seq[&reduced], par[&reduced], "determinism: any schedule, same arrays");
    println!(
        "ArrayOL reference executor: {}x{} image -> {}x{} block sums (sequential == parallel)",
        N,
        N,
        N / B,
        N / B
    );

    // ---- 2. The same application as a GASPARD2 model on the GPU ----------
    // (patterns are rank-1 in the MDE chain, so the block tiler reads rows)
    let strip = Component {
        name: "RowSum".into(),
        stereotype: Stereotype::SwResource,
        ports: vec![
            MPort { name: "pin".into(), dir: PortDir::In, shape: vec![B] },
            MPort { name: "pout".into(), dir: PortDir::Out, shape: vec![1] },
        ],
        kind: ComponentKind::Elementary { op: ElementaryOp::SumReduce },
    };
    let reducer = Component {
        name: "StripReducer".into(),
        stereotype: Stereotype::SwResource,
        ports: vec![
            MPort { name: "fin".into(), dir: PortDir::In, shape: vec![N, N] },
            MPort { name: "fout".into(), dir: PortDir::Out, shape: vec![N, N / B] },
        ],
        kind: ComponentKind::Repetitive {
            repetition: vec![N, N / B],
            inner: "RowSum".into(),
            input_tilers: vec![(
                vec![B],
                TilerSpec {
                    origin: vec![0, 0],
                    fitting: vec![vec![0], vec![1]],
                    paving: vec![vec![1, 0], vec![0, B as i64]],
                },
            )],
            output_tilers: vec![(
                vec![1],
                TilerSpec {
                    origin: vec![0, 0],
                    fitting: vec![vec![0], vec![1]],
                    paving: vec![vec![1, 0], vec![0, 1]],
                },
            )],
        },
    };
    let source = Component {
        name: "Src".into(),
        stereotype: Stereotype::SwResource,
        ports: vec![MPort { name: "out".into(), dir: PortDir::Out, shape: vec![N, N] }],
        kind: ComponentKind::FrameSource,
    };
    let sink = Component {
        name: "Snk".into(),
        stereotype: Stereotype::SwResource,
        ports: vec![MPort { name: "in".into(), dir: PortDir::In, shape: vec![N, N / B] }],
        kind: ComponentKind::FrameSink,
    };
    let root = Component {
        name: "App".into(),
        stereotype: Stereotype::SwResource,
        ports: vec![],
        kind: ComponentKind::Composite {
            parts: vec![
                ("src".into(), "Src".into()),
                ("red".into(), "StripReducer".into()),
                ("snk".into(), "Snk".into()),
            ],
            connections: vec![
                Connection {
                    from: PartRef::Part { part: "src".into(), port: "out".into() },
                    to: PartRef::Part { part: "red".into(), port: "fin".into() },
                },
                Connection {
                    from: PartRef::Part { part: "red".into(), port: "fout".into() },
                    to: PartRef::Part { part: "snk".into(), port: "in".into() },
                },
            ],
        },
    };
    let model = Model {
        name: "strip-reduce".into(),
        components: vec![strip, reducer, source, sink, root],
        root: "App".into(),
    };
    let alloc = Allocation::default()
        .allocate("Src", "i7_930")
        .allocate("Snk", "i7_930")
        .allocate("StripReducer", "gtx480");

    let deployed = deploy(model, Platform::cpu_gpu(), alloc).expect("deployment");
    let scheduled = schedule(&deployed).expect("scheduling");
    let opencl = gaspard::generate_opencl(&scheduled).expect("codegen");
    println!("GASPARD2 chain generated {} OpenCL kernel(s):\n", opencl.kernels.len());
    println!("{}", opencl.emit_opencl_source());

    let mut device = Device::gtx480();
    let outs =
        gaspard::run_opencl(&opencl, &mut device, std::slice::from_ref(&image)).expect("GPU run");

    // Row sums on the device must agree with a direct computation.
    for i in 0..N {
        for t in 0..N / B {
            let direct: i64 = (0..B).map(|p| *image.get(&[i, t * B + p]).unwrap()).sum();
            assert_eq!(*outs[0].get(&[i, t]).unwrap(), direct);
        }
    }
    println!("device result verified; simulated GPU time {:.1} us", device.now_us());
}
