//! The full paper experiment in miniature: both compilation routes process
//! the same video stream, and the profiles are printed side by side.
//!
//! ```sh
//! cargo run --release --example downscaler_race [-- frames] [--streams N]
//! ```
//!
//! Uses the CIF-sized scenario (288×352 → 128×132) so it runs in seconds;
//! `cargo run --release -p bench --bin reproduce` does the full HD version.
//! With `--streams 2` each route double-buffers its frames over async
//! streams/command queues, so uploads, kernels, and downloads overlap on the
//! simulated copy and compute engines; `--streams 1` (the default) is the
//! serialized baseline and reproduces the classic profile exactly.

use gpu_abstractions::{downscaler, mdarray, simgpu};

use downscaler::frames::{FrameGenerator, FrameSink};
use downscaler::pipelines::{
    build_gaspard, build_sac, reference_downscale, run_gaspard_batch, run_sac_batch, ExecOptions,
};
use downscaler::sac_src::{Part, Variant};
use downscaler::Scenario;
use simgpu::device::Device;
use simgpu::profiler::{Group, OpClass};

fn main() {
    let mut frames: usize = 4;
    let mut streams: usize = 1;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--streams" {
            streams = args
                .next()
                .and_then(|v| v.parse().ok())
                .expect("--streams needs a positive integer");
        } else if let Ok(n) = a.parse() {
            frames = n;
        }
    }
    let mut s = Scenario::cif();
    s.frames = frames;
    println!(
        "downscaling {} frames of {}x{} video to {}x{} on the simulated GTX480 ({} stream{})\n",
        s.frames,
        s.rows,
        s.cols,
        s.out_shape().0,
        s.out_shape().1,
        streams.max(1),
        if streams.max(1) == 1 { "" } else { "s" }
    );

    // Compile both routes once (the paper's design/compile time).
    let sac =
        build_sac(&s, Variant::NonGeneric, Part::Full, &Default::default()).expect("SaC route");
    let gasp = build_gaspard(&s).expect("GASPARD2 route");
    println!(
        "SaC route:      {} kernels/frame after WITH-loop folding ({} folds, {} boundary splits)",
        sac.cuda.launches_per_run(),
        sac.report.fold.folds,
        sac.report.generators_after_split - sac.report.generators_before_split
    );
    println!(
        "GASPARD2 route: {} kernels/frame (one per channel task)\n",
        gasp.opencl.kernels.len()
    );

    let seed = 42;
    let gen = FrameGenerator::new(s.channels, s.rows, s.cols, seed);
    let mut sac_device = Device::gtx480();
    let mut gasp_device = Device::gtx480();
    let mut sac_sink = FrameSink::new();
    let mut gasp_sink = FrameSink::new();
    let batch = ExecOptions { streams, ..Default::default() };

    let sac_outs = run_sac_batch(&s, &sac, &mut sac_device, seed, batch).expect("SaC batch");
    let gasp_outs =
        run_gaspard_batch(&s, &gasp, &mut gasp_device, seed, batch).expect("Gaspard batch");

    for (f, (sac_out, gasp_out)) in sac_outs.iter().zip(&gasp_outs).enumerate() {
        sac_sink.consume(&FrameGenerator::unstack(sac_out));
        gasp_sink.consume(gasp_out);

        // Every frame is also checked against the golden CPU filters.
        let expect = reference_downscale(&s, &gen.frame_rank3(f));
        assert_eq!(sac_out, &expect, "SaC diverged on frame {f}");
        assert_eq!(FrameGenerator::stack(gasp_out), expect, "Gaspard diverged on frame {f}");
    }
    assert_eq!(sac_sink.digest, gasp_sink.digest);
    println!(
        "both routes produced identical video (digest {:#018x} over {} frames)\n",
        sac_sink.digest, sac_sink.frames
    );

    let groups = [
        Group::kernels("H. Filter", "hf_"),
        Group::kernels("V. Filter", "vf_"),
        Group::class("memcpyHtoDasync", OpClass::H2D),
        Group::class("memcpyDtoHasync", OpClass::D2H),
    ];
    println!("--- SaC -> CUDA profile ---\n{}", sac_device.profiler.table(&groups));
    println!("--- GASPARD2 -> OpenCL profile ---\n{}", gasp_device.profiler.table(&groups));
    if streams > 1 {
        println!("--- SaC -> CUDA timeline ---\n{}", sac_device.profiler.timeline_table());
        println!("--- GASPARD2 -> OpenCL timeline ---\n{}", gasp_device.profiler.timeline_table());
    }
    println!(
        "simulated totals: SaC {:.1} ms vs Gaspard2 {:.1} ms per {} frames",
        sac_device.now_us() / 1e3,
        gasp_device.now_us() / 1e3,
        s.frames
    );

    // A visual souvenir: the first output frame's red channel as PGM.
    let first = gen.frame_channels(0);
    let red = downscaler::filter::downscale_channel(&first[0], &s.h, &s.v);
    let pgm = FrameSink::to_pgm(&red);
    let path = std::env::temp_dir().join("downscaled_red.pgm");
    if std::fs::write(&path, pgm).is_ok() {
        println!("wrote {} ({}x{})", path.display(), red.shape().dim(1), red.shape().dim(0));
    }
    let _ = mdarray::ops::checksum(&red);
}
