//! The full paper experiment in miniature: both compilation routes process
//! the same video stream, and the profiles are printed side by side.
//!
//! ```sh
//! cargo run --release --example downscaler_race [-- frames]
//! ```
//!
//! Uses the CIF-sized scenario (288×352 → 128×132) so it runs in seconds;
//! `cargo run --release -p bench --bin reproduce` does the full HD version.

use gpu_abstractions::{downscaler, gaspard, mdarray, sac_cuda, simgpu};

use downscaler::frames::{FrameGenerator, FrameSink};
use downscaler::pipelines::{build_gaspard, build_sac, reference_downscale};
use downscaler::sac_src::{Part, Variant};
use downscaler::Scenario;
use sac_cuda::exec::{run_on_device_opts, ExecOptions};
use simgpu::device::Device;
use simgpu::profiler::{Group, OpClass};

fn main() {
    let frames: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(4);
    let mut s = Scenario::cif();
    s.frames = frames;
    println!(
        "downscaling {} frames of {}x{} video to {}x{} on the simulated GTX480\n",
        s.frames,
        s.rows,
        s.cols,
        s.out_shape().0,
        s.out_shape().1
    );

    // Compile both routes once (the paper's design/compile time).
    let sac = build_sac(&s, Variant::NonGeneric, Part::Full, &Default::default())
        .expect("SaC route");
    let gasp = build_gaspard(&s).expect("GASPARD2 route");
    println!(
        "SaC route:      {} kernels/frame after WITH-loop folding ({} folds, {} boundary splits)",
        sac.cuda.launches_per_run(),
        sac.report.fold.folds,
        sac.report.generators_after_split - sac.report.generators_before_split
    );
    println!("GASPARD2 route: {} kernels/frame (one per channel task)\n", gasp.opencl.kernels.len());

    let gen = FrameGenerator::new(s.channels, s.rows, s.cols, 42);
    let mut sac_device = Device::gtx480();
    let mut gasp_device = Device::gtx480();
    let mut sac_sink = FrameSink::new();
    let mut gasp_sink = FrameSink::new();
    let opts = ExecOptions { channel_chunks: s.channels, ..Default::default() };

    for f in 0..s.frames {
        let channels = gen.frame_channels(f);
        let stacked = FrameGenerator::stack(&channels);

        let (sac_out, _) =
            run_on_device_opts(&sac.cuda, &mut sac_device, std::slice::from_ref(&stacked), opts)
                .expect("SaC run");
        sac_sink.consume(&FrameGenerator::unstack(&sac_out));

        let gasp_out =
            gaspard::run_opencl(&gasp.opencl, &mut gasp_device, &channels).expect("Gaspard run");
        gasp_sink.consume(&gasp_out);

        // Every frame is also checked against the golden CPU filters.
        let expect = reference_downscale(&s, &stacked);
        assert_eq!(sac_out, expect, "SaC diverged on frame {f}");
        assert_eq!(FrameGenerator::stack(&gasp_out), expect, "Gaspard diverged on frame {f}");
    }
    assert_eq!(sac_sink.digest, gasp_sink.digest);
    println!(
        "both routes produced identical video (digest {:#018x} over {} frames)\n",
        sac_sink.digest, sac_sink.frames
    );

    let groups = [
        Group::kernels("H. Filter", "hf_"),
        Group::kernels("V. Filter", "vf_"),
        Group::class("memcpyHtoDasync", OpClass::H2D),
        Group::class("memcpyDtoHasync", OpClass::D2H),
    ];
    println!("--- SaC -> CUDA profile ---\n{}", sac_device.profiler.table(&groups));
    println!("--- GASPARD2 -> OpenCL profile ---\n{}", gasp_device.profiler.table(&groups));
    println!(
        "simulated totals: SaC {:.1} ms vs Gaspard2 {:.1} ms per {} frames",
        sac_device.now_us() / 1e3,
        gasp_device.now_us() / 1e3,
        s.frames
    );

    // A visual souvenir: the first output frame's red channel as PGM.
    let first = gen.frame_channels(0);
    let red = downscaler::filter::downscale_channel(&first[0], &s.h, &s.v);
    let pgm = FrameSink::to_pgm(&red);
    let path = std::env::temp_dir().join("downscaled_red.pgm");
    if std::fs::write(&path, pgm).is_ok() {
        println!("wrote {} ({}x{})", path.display(), red.shape().dim(1), red.shape().dim(0));
    }
    let _ = mdarray::ops::checksum(&red);
}
