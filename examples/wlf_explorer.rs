//! WITH-loop folding under a microscope.
//!
//! ```sh
//! cargo run --release --example wlf_explorer
//! ```
//!
//! Compiles the non-generic horizontal filter twice — once with WLF enabled,
//! once without — and prints the flat programs, kernel counts and simulated
//! timing difference, reproducing in miniature the optimisation the paper's
//! §VII builds its analysis on (and the Figure 8 artefact).

use gpu_abstractions::{downscaler, sac_cuda, sac_lang, simgpu};

use downscaler::pipelines::build_sac;
use downscaler::sac_src::{Part, Variant};
use downscaler::{FrameGenerator, Scenario};
use sac_cuda::exec::{run_on_device, HostCost};
use sac_lang::opt::OptConfig;
use simgpu::device::Device;

fn main() {
    let s = Scenario::cif();
    let frame = FrameGenerator::new(s.channels, s.rows, s.cols, 7).frame_rank3(0);

    let folded = build_sac(&s, Variant::NonGeneric, Part::Horizontal, &OptConfig::default())
        .expect("folded route");
    let unfolded = build_sac(
        &s,
        Variant::NonGeneric,
        Part::Horizontal,
        &OptConfig { with_loop_folding: false, resolve_modulo: true },
    )
    .expect("unfolded route");

    println!("=== WITH-loop folding: ON (the paper's compiler) ===");
    println!(
        "folds: {}, boundary splits: {}, kernels: {}\n",
        folded.report.fold.folds,
        folded.report.generators_after_split - folded.report.generators_before_split,
        folded.cuda.launches_per_run()
    );
    println!("{}", folded.flat);

    println!("=== WITH-loop folding: OFF ===");
    println!(
        "kernels: {} (three separate passes with intermediate arrays)\n",
        unfolded.cuda.launches_per_run()
    );
    for (i, step) in unfolded.flat.steps.iter().enumerate() {
        if let sac_lang::wir::Step::With { target, with } = step {
            println!(
                "  step {i}: {} = with-loop over {:?} ({} generators)",
                unfolded.flat.arrays[*target].name,
                with.shape,
                with.generators.len()
            );
        }
    }
    println!();

    // Execute both on fresh devices and compare simulated time + memory.
    let mut d1 = Device::gtx480();
    let (out1, _) =
        run_on_device(&folded.cuda, &mut d1, std::slice::from_ref(&frame), HostCost::default())
            .unwrap();
    let mut d2 = Device::gtx480();
    let (out2, _) = run_on_device(&unfolded.cuda, &mut d2, &[frame], HostCost::default()).unwrap();
    assert_eq!(out1, out2, "folding must not change results");

    println!("simulated GPU time per frame:");
    println!("  folded:   {:>9.1} us ({} launches)", d1.now_us(), folded.cuda.launches_per_run());
    println!("  unfolded: {:>9.1} us ({} launches)", d2.now_us(), unfolded.cuda.launches_per_run());
    println!("peak device memory:");
    println!("  folded:   {:>9.1} KiB", d1.peak_allocated_bytes() as f64 / 1024.0);
    println!(
        "  unfolded: {:>9.1} KiB (intermediate tile arrays materialised)",
        d2.peak_allocated_bytes() as f64 / 1024.0
    );
    println!(
        "\nWLF avoids materialising the intermediate tile arrays ({} fewer arrays on the device)\nand saves {:.1}% of simulated time — the paper's \"avoids expensive data copy and\nenables better data reuse\".",
        unfolded.flat.arrays.len() - folded.flat.arrays.len(),
        (1.0 - d1.now_us() / d2.now_us()) * 100.0
    );
}
